//! Configurations: the system state `c ∈ N₀^k` with `Σ cᵢ = n`.
//!
//! The paper describes the state of the complete graph purely by the
//! support counts of each color (Section 2.1). [`Configuration`] maintains
//! that vector together with the invariant `Σ cᵢ = n` and exposes the
//! observables the analysis tracks: number of remaining colors, maximum
//! support, bias, and the majorization preorder.
//!
//! # Occupancy-aware representation
//!
//! The many-color regime the paper's separation lives in (`k = n`
//! singleton starts, Theorem 5) makes the dense vector the wrong unit of
//! work: within a few rounds almost every slot is empty, yet a dense scan
//! still pays `O(k)`. The configuration therefore carries, alongside the
//! positional `counts` vector (color identity stays positional):
//!
//! * an **occupied-slot list** — the ascending indices with non-zero
//!   support, so iteration is `O(#occupied)`;
//! * **cached observables** — `n`, the number of colors, the two largest
//!   supports, and `Σ cᵢ²` — refreshed in the same `O(#occupied)` pass
//!   that rewrites a round, so [`Configuration::num_colors`],
//!   [`Configuration::max_support`], [`Configuration::bias`], and
//!   [`Configuration::l2_norm_sq`] are `O(1)`.
//!
//! Every process in this crate has `αᵢ(c) = 0` whenever `cᵢ = 0` (dead
//! colors stay dead), so the occupied list only ever shrinks along a
//! trajectory — which is exactly why sparse stepping via
//! [`Configuration::rewrite_occupied`] makes singleton-start rounds
//! `O(#surviving colors)` instead of `O(k)`.

use std::hash::{Hash, Hasher};

use symbreak_majorization::vector as major;

use crate::opinion::Opinion;

/// A population configuration: `counts[i]` nodes currently support color
/// `i`; the total is the population size `n`.
///
/// Equality and hashing consider only the counts and the population size;
/// the occupancy list and cached observables are derived data.
#[derive(Debug, Clone)]
pub struct Configuration {
    counts: Vec<u64>,
    n: u64,
    /// Ascending slot indices with `counts[i] > 0`.
    occupied: Vec<u32>,
    /// `Σ cᵢ²` — exact, so `‖x‖₂²` is one division.
    sum_sq: u128,
    /// Largest support.
    max_support: u64,
    /// Second-largest support (as a multiset: equals `max_support` when
    /// two slots tie for the lead; 0 when fewer than two colors remain).
    second_support: u64,
}

impl PartialEq for Configuration {
    fn eq(&self, other: &Self) -> bool {
        self.n == other.n && self.counts == other.counts
    }
}

impl Eq for Configuration {}

impl Hash for Configuration {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.counts.hash(state);
        self.n.hash(state);
    }
}

impl Configuration {
    /// Creates a configuration from explicit per-color counts.
    ///
    /// Trailing zero colors are retained (color identity is positional).
    ///
    /// # Panics
    /// Panics if `counts` is empty or has more than `u32::MAX` slots.
    pub fn from_counts(counts: Vec<u64>) -> Self {
        assert!(!counts.is_empty(), "configuration needs at least one color slot");
        let n = counts.iter().sum();
        let mut cfg =
            Self { counts, n, occupied: Vec::new(), sum_sq: 0, max_support: 0, second_support: 0 };
        cfg.rebuild_caches();
        cfg
    }

    /// Creates a configuration over `num_slots` slots from sparse
    /// `(slot, count)` pairs, in `O(num_slots + #pairs)` without an
    /// intermediate dense vector at the call site. Pairs may repeat a
    /// slot (they accumulate) and zero counts are skipped — the
    /// histogram-backed shard representation seeds its local state
    /// through this from a coordinator snapshot body.
    ///
    /// # Panics
    /// Panics if `num_slots` is zero or a pair names a slot at or
    /// beyond it.
    pub fn from_sparse(num_slots: usize, pairs: &[(u32, u64)]) -> Self {
        assert!(num_slots >= 1, "configuration needs at least one color slot");
        let mut cfg = Self {
            counts: vec![0; num_slots],
            n: 0,
            occupied: Vec::new(),
            sum_sq: 0,
            max_support: 0,
            second_support: 0,
        };
        cfg.rebuild_sparse(std::iter::once(pairs));
        cfg
    }

    /// The consensus configuration: all `n` nodes on one color (slot 0 of
    /// `k` slots).
    pub fn consensus(n: u64, k: usize) -> Self {
        assert!(k >= 1, "need at least one color slot");
        let mut counts = vec![0; k];
        counts[0] = n;
        Self::from_counts(counts)
    }

    /// The balanced configuration on `k` colors: each color has `n/k`
    /// nodes, with the remainder spread over the first `n mod k` colors.
    pub fn uniform(n: u64, k: usize) -> Self {
        assert!(k >= 1, "need at least one color");
        assert!(n >= k as u64, "need at least one node per color");
        let base = n / k as u64;
        let extra = (n % k as u64) as usize;
        let counts = (0..k).map(|i| base + u64::from(i < extra)).collect();
        Self::from_counts(counts)
    }

    /// The leader-election start: `n` nodes with pairwise distinct colors.
    pub fn singletons(n: u64) -> Self {
        assert!(n >= 1, "need at least one node");
        Self::from_counts(vec![1; n as usize])
    }

    /// A biased configuration: color 0 receives `bias` extra nodes, the
    /// rest is split as evenly as possible over all `k` colors.
    ///
    /// # Panics
    /// Panics if `bias > n` or `n − bias < k`.
    pub fn biased(n: u64, k: usize, bias: u64) -> Self {
        assert!(bias <= n, "bias cannot exceed n");
        let rest = n - bias;
        let mut cfg = Self::uniform(rest, k);
        cfg.counts[0] += bias;
        cfg.n = n;
        cfg.rebuild_caches();
        cfg
    }

    /// Recomputes the occupancy list and cached observables from the
    /// counts in `O(k)`. `n` is left untouched (it is the authoritative
    /// mass target that [`Configuration::validate`] checks against).
    pub(crate) fn rebuild_caches(&mut self) {
        assert!(self.counts.len() <= u32::MAX as usize, "too many color slots");
        self.occupied.clear();
        let mut sum_sq = 0u128;
        let mut first = 0u64;
        let mut second = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            self.occupied.push(i as u32);
            sum_sq += (c as u128) * (c as u128);
            if c >= first {
                second = first;
                first = c;
            } else if c > second {
                second = c;
            }
        }
        self.sum_sq = sum_sq;
        self.max_support = first;
        self.second_support = second;
    }

    /// Population size `n`.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Number of color slots `k` (including empty ones).
    pub fn num_slots(&self) -> usize {
        self.counts.len()
    }

    /// Number of colors with non-zero support ("remaining colors"). `O(1)`.
    pub fn num_colors(&self) -> usize {
        self.occupied.len()
    }

    /// Support of color `i` (0 for out-of-range slots).
    pub fn support(&self, i: usize) -> u64 {
        self.counts.get(i).copied().unwrap_or(0)
    }

    /// The raw count vector.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// The ascending slot indices with non-zero support.
    pub fn occupied(&self) -> &[u32] {
        &self.occupied
    }

    /// The supports of the occupied slots, in ascending slot order.
    pub fn occupied_counts(&self) -> impl Iterator<Item = u64> + '_ {
        self.occupied.iter().map(move |&i| self.counts[i as usize])
    }

    /// Mutable access for processes that rewrite supports directly (e.g.
    /// the adversary). The caller must restore `Σ cᵢ = n`; this is checked
    /// in debug builds on the next [`Configuration::validate`] call. The
    /// occupancy list and cached observables are refreshed (`O(k)`) when
    /// the returned guard drops.
    pub fn counts_mut(&mut self) -> CountsMut<'_> {
        CountsMut { cfg: self }
    }

    /// Rewrites the supports of the occupied slots in one pass, then
    /// refreshes the occupancy list and cached observables in
    /// `O(#occupied)`.
    ///
    /// `f` receives the occupied-slot list and the dense counts buffer;
    /// it may write any values at the occupied slots (slots dropping to
    /// zero leave the occupancy list) but must leave every other slot at
    /// zero — this is the "dead colors stay dead" invariant every process
    /// in this crate satisfies. The population size is re-derived from
    /// the written counts, so mass-changing rewrites (e.g. the undecided
    /// dynamics trading decided mass against undecided nodes) are
    /// supported.
    pub fn rewrite_occupied<F>(&mut self, f: F)
    where
        F: FnOnce(&[u32], &mut [u64]),
    {
        let occ = std::mem::take(&mut self.occupied);
        f(&occ, &mut self.counts);
        self.occupied = occ;
        self.refresh_after_rewrite();
    }

    /// Replaces the supports of the occupied slots with the element-wise
    /// sum of the given sparse `(slot, count)` parts (e.g. per-shard
    /// reports of a distributed run), in `O(#occupied + Σ|partᵢ|)` with
    /// no allocation.
    ///
    /// Built on [`Configuration::rewrite_occupied`]: every part may only
    /// name slots that are currently occupied — the "dead colors stay
    /// dead" invariant every process in this crate satisfies (an opinion
    /// with zero global support cannot be sampled, so it cannot
    /// reappear). Pairs within a part may come in any order. Slots named
    /// by no part drop out of the occupancy list. The population size is
    /// re-derived from the merged counts, so parts whose total mass
    /// differs from `n` (e.g. undecided-dynamics shards holding back
    /// undecided nodes) are supported.
    ///
    /// # Panics
    /// Panics if a part names a slot with no current support: debug
    /// builds pinpoint the slot per entry; release builds catch any
    /// violation through an `O(1)`-per-entry mass check (mass written to
    /// a dead slot is invisible to the occupancy rescan, so the folded
    /// total and the re-derived `n` can only disagree — and always do —
    /// when the invariant was broken).
    pub fn merge_sparse<'a, I>(&mut self, parts: I)
    where
        I: IntoIterator<Item = &'a [(u32, u64)]>,
    {
        let mut folded = 0u64;
        self.rewrite_occupied(|occ, counts| {
            for &i in occ {
                counts[i as usize] = 0;
            }
            for part in parts {
                for &(slot, count) in part {
                    debug_assert!(
                        occ.binary_search(&slot).is_ok(),
                        "merge_sparse: slot {slot} has no support (dead colors stay dead)"
                    );
                    counts[slot as usize] += count;
                    folded += count;
                }
            }
        });
        assert_eq!(
            self.n, folded,
            "merge_sparse: a part named a slot with no support (dead colors stay dead)"
        );
    }

    /// Applies sparse signed per-slot deltas (e.g. per-shard *delta*
    /// reports of a distributed run) to the occupied slots, in
    /// `O(#occupied + Σ|partᵢ|)` with no allocation.
    ///
    /// This is the delta-control-plane sibling of
    /// [`Configuration::merge_sparse`]: where `merge_sparse` replaces the
    /// occupied supports with a sum of absolute parts, `apply_deltas`
    /// shifts them by `Σ parts` — so a round in which almost nothing
    /// changed costs `O(#changed)` on the wire *and* here, instead of
    /// `O(#occupied)`. Built on [`Configuration::rewrite_occupied`]:
    /// every part may only name slots that are currently occupied (dead
    /// colors stay dead — an opinion with zero global support cannot be
    /// sampled, so no delta can land on it), deltas for the same slot
    /// accumulate, and slots whose support reaches zero drop out of the
    /// occupancy list. The population size is re-derived, so
    /// mass-changing delta streams (undecided-dynamics shards trading
    /// decided mass against undecided nodes) are supported.
    ///
    /// ```
    /// use symbreak_core::Configuration;
    ///
    /// let mut c = Configuration::from_counts(vec![4, 0, 3, 3]);
    /// // Two shards report what changed: one unit moves slot 2 -> slot 0.
    /// c.apply_deltas([&[(2u32, -1i64)][..], &[(0, 1)][..]]);
    /// assert_eq!(c.counts(), &[5, 0, 2, 3]);
    /// assert_eq!(c.n(), 10);
    /// ```
    ///
    /// # Panics
    /// Panics if a delta drives a slot's support negative, or if a part
    /// names a slot with no current support: debug builds pinpoint the
    /// slot per entry; release builds catch any net resurrection through
    /// an `O(1)`-per-entry mass identity (`new n = old n + Σ deltas`
    /// holds exactly iff every delta landed on a live slot, because mass
    /// written to a dead slot is invisible to the occupancy rescan).
    pub fn apply_deltas<'a, I>(&mut self, parts: I)
    where
        I: IntoIterator<Item = &'a [(u32, i64)]>,
    {
        let old_n = self.n as i128;
        let mut shift = 0i128;
        self.rewrite_occupied(|occ, counts| {
            for part in parts {
                for &(slot, delta) in part {
                    debug_assert!(
                        occ.binary_search(&slot).is_ok(),
                        "apply_deltas: slot {slot} has no support (dead colors stay dead)"
                    );
                    let c = counts[slot as usize] as i128 + i128::from(delta);
                    assert!(c >= 0, "apply_deltas: slot {slot} support went negative ({c})");
                    counts[slot as usize] = c as u64;
                    shift += i128::from(delta);
                }
            }
        });
        assert_eq!(
            self.n as i128,
            old_n + shift,
            "apply_deltas: a part named a slot with no support (dead colors stay dead)"
        );
    }

    /// Replaces the whole support structure with the element-wise sum of
    /// the given sparse `(slot, count)` parts, tolerating parts that name
    /// currently *dead* slots.
    ///
    /// This is the degraded-operation sibling of
    /// [`Configuration::merge_sparse`]: a fault-tolerant coordinator
    /// folds per-shard report bodies that may be **stale** (the last
    /// known counts of a crashed or straggling shard), and a stale body
    /// may legitimately name a color that has since died in the merged
    /// view — a revival that `merge_sparse`'s dead-colors-stay-dead
    /// invariant correctly rejects on the lossless path. Cost is
    /// `O(#occupied_before + Σ|partᵢ| + occ·log occ)` for the occupancy
    /// re-sort, with no dense scan. Pairs may repeat a slot (they
    /// accumulate) and zero counts are skipped; the population size is
    /// re-derived from the folded counts.
    ///
    /// ```
    /// use symbreak_core::Configuration;
    ///
    /// let mut c = Configuration::from_counts(vec![4, 0, 0, 6]);
    /// // A stale shard body revives slot 1; slot 3 loses all support.
    /// c.rebuild_sparse([&[(0u32, 2u64), (1, 3)][..], &[(0, 1)][..]]);
    /// assert_eq!(c.counts(), &[3, 3, 0, 0]);
    /// assert_eq!(c.n(), 6);
    /// ```
    ///
    /// # Panics
    /// Panics if a part names a slot at or beyond `num_slots`.
    pub fn rebuild_sparse<'a, I>(&mut self, parts: I)
    where
        I: IntoIterator<Item = &'a [(u32, u64)]>,
    {
        for idx in 0..self.occupied.len() {
            let slot = self.occupied[idx] as usize;
            self.counts[slot] = 0;
        }
        self.occupied.clear();
        for part in parts {
            for &(slot, count) in part {
                assert!(
                    (slot as usize) < self.counts.len(),
                    "rebuild_sparse: slot {slot} out of range"
                );
                if count == 0 {
                    continue;
                }
                if self.counts[slot as usize] == 0 {
                    self.occupied.push(slot);
                }
                self.counts[slot as usize] += count;
            }
        }
        self.occupied.sort_unstable();
        self.refresh_after_rewrite();
    }

    /// Recomputes `n`, `Σ cᵢ²`, the top-two supports, and compacts the
    /// occupancy list, in one `O(#occupied)` pass. Assumes every slot
    /// outside the occupancy list is zero.
    fn refresh_after_rewrite(&mut self) {
        let counts = &self.counts;
        let mut n = 0u64;
        let mut sum_sq = 0u128;
        let mut first = 0u64;
        let mut second = 0u64;
        self.occupied.retain(|&i| {
            let c = counts[i as usize];
            if c == 0 {
                return false;
            }
            n += c;
            sum_sq += (c as u128) * (c as u128);
            if c >= first {
                second = first;
                first = c;
            } else if c > second {
                second = c;
            }
            true
        });
        self.n = n;
        self.sum_sq = sum_sq;
        self.max_support = first;
        self.second_support = second;
    }

    /// Moves one unit of support `from → to` (`None` meaning outside the
    /// configuration, e.g. the undecided pool), keeping counts and `n`
    /// exact.
    ///
    /// Every derived cache (occupancy list, `Σ cᵢ²`, top-two supports) is
    /// left **stale**: keeping the sorted occupancy list exact per unit
    /// shift would cost an `O(#occupied)` `Vec` remove whenever a slot
    /// empties, turning many-color agent rounds quadratic. Callers
    /// batching unit shifts (the agent engine's `record`) instead call
    /// [`Configuration::rebuild_caches`] once per round — `O(k)`, which
    /// an `O(n·h)` agent round dominates — before observables are read.
    #[inline]
    pub(crate) fn shift_unit(&mut self, from: Option<usize>, to: Option<usize>) {
        if let Some(i) = from {
            debug_assert!(self.counts[i] > 0, "cannot remove support from empty slot {i}");
            self.counts[i] -= 1;
            self.n -= 1;
        }
        if let Some(i) = to {
            self.counts[i] += 1;
            self.n += 1;
        }
    }

    /// Moves `amount` units of support `from → to` (`None` meaning
    /// outside the configuration), keeping **every** derived cache exact
    /// in `O(#occupied)` — unlike [`Configuration::counts_mut`], whose
    /// guard rebuilds the caches with a dense `O(k)` scan on drop.
    /// `to` may name a currently dead slot (adversaries revive colors);
    /// `from` must hold at least `amount`.
    ///
    /// This is the occupancy-aware mutation primitive the corruption
    /// strategies route their `shift_unit`-style deltas through: the
    /// occupied list is edited in place (binary-search insert/remove)
    /// and the scalar caches are re-derived from the occupied slots
    /// only, so adversarial sweeps from `k = n` singleton starts scale
    /// with the surviving support, never with `k`.
    ///
    /// # Panics
    /// Panics if `from` holds fewer than `amount` units or `to` is out
    /// of range.
    pub fn shift_support(&mut self, from: Option<usize>, to: Option<usize>, amount: u64) {
        if amount == 0 || from == to {
            return;
        }
        if let Some(i) = from {
            assert!(self.counts[i] >= amount, "slot {i} holds {} < {amount} units", self.counts[i]);
            self.counts[i] -= amount;
            self.n -= amount;
            if self.counts[i] == 0 {
                let pos = self.occupied.binary_search(&(i as u32)).expect("occupied slot listed");
                self.occupied.remove(pos);
            }
        }
        if let Some(i) = to {
            assert!(i < self.counts.len(), "slot {i} out of range");
            if self.counts[i] == 0 {
                let pos =
                    self.occupied.binary_search(&(i as u32)).expect_err("dead slot not listed");
                self.occupied.insert(pos, i as u32);
            }
            self.counts[i] += amount;
            self.n += amount;
        }
        self.refresh_scalars_from_occupied();
    }

    /// Re-derives every cached observable from a round's [`ChangeLog`]
    /// in `O(#changed)` (amortized), then clears the log for the next
    /// round — the incremental sibling of the dense
    /// [`Configuration::rebuild_caches`] scan.
    ///
    /// The caller has already applied the count mutations themselves
    /// (the engine's `shift_unit` batch keeps `counts` and `n` exact)
    /// and noted each touched slot's round-start count into the log.
    /// This pass then:
    ///
    /// * shifts `Σ cᵢ²` by the per-slot `new² − old²` deltas;
    /// * binary-search inserts/removes born and dead slots in the
    ///   ascending occupied list (births and deaths are the only
    ///   `O(#occupied)`-worst-case edits, and they are rare in the
    ///   stalled regime this path exists for);
    /// * maintains the top-two supports *with slot identities* kept in
    ///   the log: while neither current leader slot shrank, every
    ///   unchanged slot is still bounded by the old second support, so
    ///   streaming the changed slots over the two leaders is exact.
    ///   When a leader shrank (or the leaders are unknown), it falls
    ///   back to one `O(#occupied)` rescan.
    ///
    /// Debug builds recount everything densely afterwards and assert
    /// the caches match.
    pub fn apply_change_log(&mut self, log: &mut ChangeLog) {
        let mut add = 0u128;
        let mut sub = 0u128;
        let mut leader_shrank = !log.synced;
        for j in 0..log.touched.len() {
            let slot = log.touched[j];
            let old = log.old[j];
            let new = self.counts[slot as usize];
            log.marked[slot as usize] = false;
            if new == old {
                continue;
            }
            sub += (old as u128) * (old as u128);
            add += (new as u128) * (new as u128);
            if old == 0 {
                let pos = self.occupied.binary_search(&slot).expect_err("dead slot not listed");
                self.occupied.insert(pos, slot);
            } else if new == 0 {
                let pos = self.occupied.binary_search(&slot).expect("occupied slot listed");
                self.occupied.remove(pos);
            }
            if new < old && (slot == log.max_slot || slot == log.second_slot) {
                leader_shrank = true;
            }
        }
        self.sum_sq = self.sum_sq + add - sub;
        if leader_shrank || self.occupied.len() < 2 {
            // A leader lost support (or is unknown): anything may have
            // overtaken it — re-derive the top two from the occupied
            // slots and re-seed the log's leader identities.
            let mut first = 0u64;
            let mut first_slot = ChangeLog::NO_SLOT;
            let mut second = 0u64;
            let mut second_slot = ChangeLog::NO_SLOT;
            for &i in &self.occupied {
                let c = self.counts[i as usize];
                if c >= first {
                    second = first;
                    second_slot = first_slot;
                    first = c;
                    first_slot = i;
                } else if c > second {
                    second = c;
                    second_slot = i;
                }
            }
            self.max_support = first;
            self.second_support = second;
            log.max_slot = first_slot;
            log.second_slot = second_slot;
            log.synced = first_slot != ChangeLog::NO_SLOT && second_slot != ChangeLog::NO_SLOT;
        } else {
            // Both leaders held or grew: their final counts still
            // dominate every unchanged slot, so streaming the changed
            // slots over them reproduces the dense top-two exactly.
            let mut max_slot = log.max_slot;
            let mut max = self.counts[max_slot as usize];
            let mut second_slot = log.second_slot;
            let mut second = self.counts[second_slot as usize];
            if second > max {
                std::mem::swap(&mut max, &mut second);
                std::mem::swap(&mut max_slot, &mut second_slot);
            }
            for &slot in &log.touched {
                if slot == log.max_slot || slot == log.second_slot {
                    continue;
                }
                let v = self.counts[slot as usize];
                if v > max {
                    second = max;
                    second_slot = max_slot;
                    max = v;
                    max_slot = slot;
                } else if v > second {
                    second = v;
                    second_slot = slot;
                }
            }
            self.max_support = max;
            self.second_support = second;
            log.max_slot = max_slot;
            log.second_slot = second_slot;
        }
        log.touched.clear();
        log.old.clear();
        #[cfg(debug_assertions)]
        self.debug_assert_caches_exact();
    }

    /// Dense recount of every cached observable, asserted against the
    /// incremental state. Debug builds only — this is the paired check
    /// the `O(#changed)` path keeps honest.
    #[cfg(debug_assertions)]
    fn debug_assert_caches_exact(&self) {
        let mut occupied = Vec::new();
        let mut sum_sq = 0u128;
        let mut first = 0u64;
        let mut second = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            occupied.push(i as u32);
            sum_sq += (c as u128) * (c as u128);
            if c >= first {
                second = first;
                first = c;
            } else if c > second {
                second = c;
            }
        }
        assert_eq!(self.occupied, occupied, "incremental occupied list diverged");
        assert_eq!(self.sum_sq, sum_sq, "incremental sum of squares diverged");
        assert_eq!(
            (self.max_support, self.second_support),
            (first, second),
            "incremental top-two supports diverged"
        );
    }

    /// Re-derives `Σ cᵢ²` and the top-two supports from the occupied
    /// list in `O(#occupied)`. The list itself must already be exact.
    fn refresh_scalars_from_occupied(&mut self) {
        let mut sum_sq = 0u128;
        let mut first = 0u64;
        let mut second = 0u64;
        for &i in &self.occupied {
            let c = self.counts[i as usize];
            sum_sq += (c as u128) * (c as u128);
            if c >= first {
                second = first;
                first = c;
            } else if c > second {
                second = c;
            }
        }
        self.sum_sq = sum_sq;
        self.max_support = first;
        self.second_support = second;
    }

    /// Recomputes and checks the population invariant after raw mutation.
    ///
    /// # Panics
    /// Panics if the counts no longer sum to `n`.
    pub fn validate(&self) {
        let total: u64 = self.counts.iter().sum();
        assert_eq!(total, self.n, "configuration mass changed: {total} != {}", self.n);
    }

    /// Re-synchronizes `n` with the counts after deliberate mass change.
    pub fn resync_total(&mut self) {
        self.n = self.counts.iter().sum();
    }

    /// Largest support `maxᵢ cᵢ`. `O(1)`.
    pub fn max_support(&self) -> u64 {
        self.max_support
    }

    /// The color with the largest support (smallest index wins ties).
    pub fn plurality(&self) -> Opinion {
        for &i in &self.occupied {
            if self.counts[i as usize] == self.max_support {
                return Opinion::new(i);
            }
        }
        // All-zero configuration: keep the historical "slot 0" answer.
        Opinion::new(0)
    }

    /// The bias: difference between the largest and second-largest support
    /// (footnote 3 of the paper). `O(1)`.
    pub fn bias(&self) -> u64 {
        self.max_support - self.second_support
    }

    /// Whether all nodes support a single color. `O(1)`.
    pub fn is_consensus(&self) -> bool {
        self.occupied.len() <= 1
    }

    /// Fractions `x = c / n`.
    pub fn fractions(&self) -> Vec<f64> {
        let n = self.n as f64;
        self.counts.iter().map(|&c| c as f64 / n).collect()
    }

    /// `‖x‖₂² = Σ (cᵢ/n)²` — the collision probability appearing in the
    /// 3-Majority process function (Equation (2)). `O(1)` from the cached
    /// integer sum of squares.
    pub fn l2_norm_sq(&self) -> f64 {
        self.sum_sq as f64 / (self.n as f64 * self.n as f64)
    }

    /// Whether `self ⪰ other` in the majorization preorder (requires equal
    /// population sizes).
    pub fn majorizes(&self, other: &Configuration) -> bool {
        if self.n != other.n {
            return false;
        }
        let a: Vec<f64> = self.counts.iter().map(|&c| c as f64).collect();
        let b: Vec<f64> = other.counts.iter().map(|&c| c as f64).collect();
        major::majorizes_eps(&a, &b, 0.5) // counts are integers; 0.5 is exact
    }

    /// Returns a copy with zero-support slots removed.
    ///
    /// Color *identity* is positional, so compaction renumbers the
    /// surviving colors; use it only for observables that are
    /// permutation-invariant (consensus time, number of colors, max
    /// support, bias, majorization) — which is everything the paper's
    /// analysis tracks.
    pub fn compacted(&self) -> Configuration {
        if self.occupied.is_empty() {
            // Preserve a slot so the invariant "at least one slot" holds.
            return Configuration::from_counts(vec![0]);
        }
        let counts: Vec<u64> = self.occupied_counts().collect();
        Configuration::from_counts(counts)
    }

    /// Removes zero-support slots in place (no allocation), renumbering
    /// the surviving colors to `0..num_colors`. Same caveats as
    /// [`Configuration::compacted`]; `O(#occupied)`.
    pub fn compact_in_place(&mut self) {
        let m = self.occupied.len();
        if m == 0 {
            self.counts.clear();
            self.counts.push(0);
            return;
        }
        if self.occupied[m - 1] as usize != m - 1 {
            // occupied[j] >= j always (ascending, distinct), so the
            // left-compaction below never overwrites an unread slot.
            for j in 0..m {
                self.counts[j] = self.counts[self.occupied[j] as usize];
            }
            for (j, o) in self.occupied.iter_mut().enumerate() {
                *o = j as u32;
            }
        }
        self.counts.truncate(m);
    }

    /// Counts sorted in non-increasing order.
    pub fn sorted_counts(&self) -> Vec<u64> {
        let mut v = self.counts.clone();
        v.sort_unstable_by(|a, b| b.cmp(a));
        v
    }

    /// Expands a per-node opinion assignment from the counts: nodes
    /// `0..c₀` get color 0, the next `c₁` color 1, and so on.
    pub fn to_opinions(&self) -> Vec<Opinion> {
        let mut out = Vec::with_capacity(self.n as usize);
        for (i, &c) in self.counts.iter().enumerate() {
            out.extend(std::iter::repeat_n(Opinion::new(i as u32), c as usize));
        }
        out
    }

    /// Rebuilds a configuration from per-node opinions, ignoring undecided
    /// nodes (their mass is dropped — callers tracking undecided counts
    /// must do so separately).
    pub fn from_opinions(opinions: &[Opinion], k: usize) -> Self {
        let mut counts = vec![0u64; k];
        for &o in opinions {
            if !o.is_undecided() {
                counts[o.index()] += 1;
            }
        }
        Self::from_counts(counts)
    }
}

/// A round's worth of touched-slot bookkeeping for
/// [`Configuration::apply_change_log`]: which slots an engine's unit
/// shifts touched, and what each held when the round began.
///
/// The engine's `record` path calls [`note`](Self::note) *before* every
/// shift — `O(1)` per call, first touch wins — and the end-of-round
/// [`Configuration::apply_change_log`] re-derives every cached
/// observable from exactly those entries, in `O(#changed)` instead of
/// the dense `O(k)` rebuild. The log also carries the identities of the
/// two leading slots between rounds (that is what makes the top-two
/// maintenance streaming); they belong to the round-state bookkeeping,
/// not to the configuration, so forced-rebuild engines pay nothing for
/// them.
///
/// Every count mutation between two `apply_change_log` calls must be
/// noted; a caller that mutates the configuration through any other
/// path must call [`desync`](Self::desync) (the next apply then rescans
/// the leaders instead of trusting stale identities).
///
/// # Example
/// ```
/// use symbreak_core::ChangeLog;
///
/// let mut log = ChangeLog::new();
/// log.ensure_slots(8);
/// log.note(3, 5);
/// log.note(0, 1);
/// log.note(3, 99); // repeat: first-touch old count wins
/// assert_eq!(log.touched(), &[3, 0]);
/// ```
#[derive(Debug, Clone)]
pub struct ChangeLog {
    /// Slots touched this round, in first-touch order.
    touched: Vec<u32>,
    /// `old[j]` = count slot `touched[j]` held when the round began.
    old: Vec<u64>,
    /// Dense membership mirror of `touched`.
    marked: Vec<bool>,
    /// Slot attaining `max_support` (`NO_SLOT` = unknown).
    max_slot: u32,
    /// A *different* slot attaining `second_support`.
    second_slot: u32,
    /// Whether the leader identities reflect the configuration.
    synced: bool,
}

impl Default for ChangeLog {
    fn default() -> Self {
        Self::new()
    }
}

impl ChangeLog {
    const NO_SLOT: u32 = u32::MAX;

    /// An empty log with unknown leaders (the first apply rescans).
    pub fn new() -> Self {
        Self {
            touched: Vec::new(),
            old: Vec::new(),
            marked: Vec::new(),
            max_slot: Self::NO_SLOT,
            second_slot: Self::NO_SLOT,
            synced: false,
        }
    }

    /// Grows the dense membership mirror to cover `k` slots.
    pub fn ensure_slots(&mut self, k: usize) {
        if self.marked.len() < k {
            self.marked.resize(k, false);
        }
    }

    /// Records that `slot` is about to change, with the count it
    /// currently holds. First touch wins; repeats are `O(1)` no-ops.
    #[inline]
    pub fn note(&mut self, slot: usize, current_count: u64) {
        if !self.marked[slot] {
            self.marked[slot] = true;
            self.touched.push(slot as u32);
            self.old.push(current_count);
        }
    }

    /// The slots touched since the last apply, in first-touch order.
    pub fn touched(&self) -> &[u32] {
        &self.touched
    }

    /// Whether no slot has been touched since the last apply.
    pub fn is_empty(&self) -> bool {
        self.touched.is_empty()
    }

    /// Forgets the cached leader identities; the next
    /// [`Configuration::apply_change_log`] re-derives them with an
    /// `O(#occupied)` rescan. Call after any un-noted mutation.
    pub fn desync(&mut self) {
        self.synced = false;
    }
}

/// Guard for raw count mutation: dereferences to the count vector and
/// refreshes the configuration's occupancy list and cached observables
/// when dropped. Obtained from [`Configuration::counts_mut`].
pub struct CountsMut<'a> {
    cfg: &'a mut Configuration,
}

impl std::ops::Deref for CountsMut<'_> {
    type Target = Vec<u64>;

    fn deref(&self) -> &Vec<u64> {
        &self.cfg.counts
    }
}

impl std::ops::DerefMut for CountsMut<'_> {
    fn deref_mut(&mut self) -> &mut Vec<u64> {
        &mut self.cfg.counts
    }
}

impl Drop for CountsMut<'_> {
    fn drop(&mut self) {
        self.cfg.rebuild_caches();
    }
}

impl std::fmt::Display for Configuration {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Configuration(n={}, colors={}, max={}, bias={})",
            self.n,
            self.num_colors(),
            self.max_support(),
            self.bias()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// From-scratch recount of every cached observable.
    fn assert_caches_match_recount(c: &Configuration) {
        let fresh = Configuration::from_counts(c.counts().to_vec());
        assert_eq!(c.num_colors(), fresh.counts().iter().filter(|&&v| v > 0).count());
        assert_eq!(c.max_support(), fresh.counts().iter().copied().max().unwrap_or(0));
        assert_eq!(c.bias(), fresh.bias());
        assert_eq!(c.occupied(), fresh.occupied());
        if fresh.n() > 0 {
            let l2: f64 = {
                let n = fresh.n() as f64;
                fresh.counts().iter().map(|&v| (v as f64 / n).powi(2)).sum()
            };
            assert!((c.l2_norm_sq() - l2).abs() < 1e-12);
        }
    }

    #[test]
    fn constructors_have_right_mass() {
        assert_eq!(Configuration::consensus(10, 3).n(), 10);
        assert_eq!(Configuration::uniform(10, 3).n(), 10);
        assert_eq!(Configuration::singletons(7).n(), 7);
        assert_eq!(Configuration::biased(20, 4, 8).n(), 20);
    }

    #[test]
    fn uniform_spreads_remainder() {
        let c = Configuration::uniform(11, 4);
        assert_eq!(c.counts(), &[3, 3, 3, 2]);
        assert_eq!(c.num_colors(), 4);
    }

    #[test]
    fn singletons_is_leader_election_start() {
        let c = Configuration::singletons(5);
        assert_eq!(c.num_colors(), 5);
        assert_eq!(c.max_support(), 1);
        assert_eq!(c.bias(), 0);
    }

    #[test]
    fn biased_config_shape() {
        let c = Configuration::biased(100, 4, 40);
        assert_eq!(c.support(0), 55); // 15 + 40
        assert_eq!(c.support(1), 15);
        assert_eq!(c.bias(), 40);
        assert_eq!(c.n(), 100);
    }

    #[test]
    fn consensus_flags() {
        let c = Configuration::consensus(9, 4);
        assert!(c.is_consensus());
        assert_eq!(c.num_colors(), 1);
        assert_eq!(c.plurality(), Opinion::new(0));
        assert!(!Configuration::uniform(9, 3).is_consensus());
    }

    #[test]
    fn bias_of_tied_leaders_is_zero() {
        let c = Configuration::from_counts(vec![5, 5, 2]);
        assert_eq!(c.bias(), 0);
        let d = Configuration::from_counts(vec![7, 4, 1]);
        assert_eq!(d.bias(), 3);
    }

    #[test]
    fn single_color_bias_is_full_support() {
        // With one color the second-largest support is 0.
        let c = Configuration::from_counts(vec![6]);
        assert_eq!(c.bias(), 6);
    }

    #[test]
    fn majorization_of_configurations() {
        let consensus = Configuration::consensus(12, 4);
        let uniform = Configuration::uniform(12, 4);
        let mid = Configuration::from_counts(vec![6, 3, 2, 1]);
        assert!(consensus.majorizes(&uniform));
        assert!(consensus.majorizes(&mid));
        assert!(mid.majorizes(&uniform));
        assert!(!uniform.majorizes(&mid));
        // Different n: incomparable.
        assert!(!consensus.majorizes(&Configuration::consensus(13, 4)));
    }

    #[test]
    fn l2_norm_sq_examples() {
        let c = Configuration::uniform(4, 2); // (1/2)^2 * 2 = 1/2
        assert!((c.l2_norm_sq() - 0.5).abs() < 1e-12);
        let d = Configuration::consensus(4, 2);
        assert!((d.l2_norm_sq() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn opinions_round_trip() {
        let c = Configuration::from_counts(vec![2, 0, 3]);
        let ops = c.to_opinions();
        assert_eq!(ops.len(), 5);
        let back = Configuration::from_opinions(&ops, 3);
        assert_eq!(back, c);
    }

    #[test]
    fn from_opinions_ignores_undecided() {
        let ops = vec![Opinion::new(0), Opinion::UNDECIDED, Opinion::new(0)];
        let c = Configuration::from_opinions(&ops, 1);
        assert_eq!(c.counts(), &[2]);
        assert_eq!(c.n(), 2);
    }

    #[test]
    fn plurality_prefers_smallest_index_on_tie() {
        let c = Configuration::from_counts(vec![3, 5, 5]);
        assert_eq!(c.plurality(), Opinion::new(1));
    }

    #[test]
    fn mutation_and_validate() {
        let mut c = Configuration::uniform(6, 3);
        c.counts_mut()[0] += 1;
        c.counts_mut()[1] -= 1;
        c.validate(); // mass preserved
        c.counts_mut()[2] += 5;
        c.resync_total();
        assert_eq!(c.n(), 11);
    }

    #[test]
    #[should_panic(expected = "mass changed")]
    fn validate_catches_mass_change() {
        let mut c = Configuration::uniform(6, 3);
        c.counts_mut()[0] += 1;
        c.validate();
    }

    #[test]
    fn fractions_sum_to_one() {
        let c = Configuration::from_counts(vec![1, 2, 3, 4]);
        let s: f64 = c.fractions().iter().sum();
        assert!((s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sorted_counts_desc() {
        let c = Configuration::from_counts(vec![1, 5, 3]);
        assert_eq!(c.sorted_counts(), vec![5, 3, 1]);
    }

    #[test]
    fn display_contains_observables() {
        let c = Configuration::uniform(10, 2);
        let s = format!("{c}");
        assert!(s.contains("n=10"));
        assert!(s.contains("colors=2"));
    }

    #[test]
    fn occupied_list_tracks_support() {
        let c = Configuration::from_counts(vec![0, 4, 0, 2, 0]);
        assert_eq!(c.occupied(), &[1, 3]);
        assert_eq!(c.occupied_counts().collect::<Vec<_>>(), vec![4, 2]);
        assert_eq!(c.num_colors(), 2);
        assert_caches_match_recount(&c);
    }

    #[test]
    fn counts_mut_guard_refreshes_caches() {
        let mut c = Configuration::from_counts(vec![3, 3, 0]);
        {
            let mut counts = c.counts_mut();
            counts[0] -= 3;
            counts[2] += 3;
        }
        assert_eq!(c.occupied(), &[1, 2]);
        assert_eq!(c.max_support(), 3);
        assert_eq!(c.bias(), 0);
        assert_caches_match_recount(&c);
    }

    #[test]
    fn rewrite_occupied_drops_emptied_slots() {
        let mut c = Configuration::from_counts(vec![5, 0, 3, 2]);
        c.rewrite_occupied(|occ, counts| {
            assert_eq!(occ, &[0, 2, 3]);
            counts[0] = 8;
            counts[2] = 0;
            counts[3] = 2;
        });
        assert_eq!(c.occupied(), &[0, 3]);
        assert_eq!(c.n(), 10);
        assert_eq!(c.max_support(), 8);
        assert_eq!(c.bias(), 6);
        assert_caches_match_recount(&c);
    }

    #[test]
    fn rewrite_occupied_rederives_population() {
        // Mass-changing rewrites (the undecided dynamics) are supported.
        let mut c = Configuration::from_counts(vec![6, 4]);
        c.rewrite_occupied(|_, counts| {
            counts[0] = 3;
            counts[1] = 2;
        });
        assert_eq!(c.n(), 5);
        assert_caches_match_recount(&c);
    }

    #[test]
    fn merge_sparse_folds_parts_and_drops_dead_slots() {
        let mut c = Configuration::from_counts(vec![4, 0, 3, 3]);
        // Two "shards" report their local occupied counts; slot 2 dies.
        c.merge_sparse([&[(0u32, 2u64), (3, 1)][..], &[(0, 3), (3, 1)][..]]);
        assert_eq!(c.counts(), &[5, 0, 0, 2]);
        assert_eq!(c.occupied(), &[0, 3]);
        assert_eq!(c.n(), 7);
        assert_eq!(c.max_support(), 5);
        assert_eq!(c.bias(), 3);
        assert_caches_match_recount(&c);
    }

    #[test]
    fn merge_sparse_rederives_population() {
        // Undecided-dynamics shards report less mass than n.
        let mut c = Configuration::from_counts(vec![6, 4]);
        c.merge_sparse([&[(0u32, 2u64)][..], &[(1, 3)][..]]);
        assert_eq!(c.counts(), &[2, 3]);
        assert_eq!(c.n(), 5);
        assert_caches_match_recount(&c);
    }

    #[test]
    fn rebuild_sparse_revives_dead_slots_and_rederives_everything() {
        let mut c = Configuration::from_counts(vec![4, 0, 0, 6]);
        // A stale body revives slot 1, slot 3 empties, slot 0 accumulates
        // across parts (including a repeated slot within one part).
        c.rebuild_sparse([&[(0u32, 2u64), (1, 3), (0, 1)][..], &[(0, 1), (2, 0)][..]]);
        assert_eq!(c.counts(), &[4, 3, 0, 0]);
        assert_eq!(c.occupied(), &[0, 1]);
        assert_eq!(c.n(), 7);
        assert_eq!(c.max_support(), 4);
        assert_caches_match_recount(&c);
    }

    #[test]
    fn from_sparse_matches_dense_construction() {
        let c = Configuration::from_sparse(5, &[(1, 3), (4, 2), (1, 1), (2, 0)]);
        assert_eq!(c, Configuration::from_counts(vec![0, 4, 0, 0, 2]));
        assert_eq!(c.occupied(), &[1, 4]);
        assert_eq!(c.n(), 6);
        assert_caches_match_recount(&c);
        // Empty pair list: a valid all-zero configuration.
        let empty = Configuration::from_sparse(3, &[]);
        assert_eq!(empty.n(), 0);
        assert_eq!(empty.num_colors(), 0);
    }

    #[test]
    fn rebuild_sparse_with_no_parts_empties_the_configuration() {
        let mut c = Configuration::from_counts(vec![4, 0, 3]);
        c.rebuild_sparse(std::iter::empty::<&[(u32, u64)]>());
        assert_eq!(c.counts(), &[0, 0, 0]);
        assert_eq!(c.n(), 0);
        assert_eq!(c.num_colors(), 0);
        assert_caches_match_recount(&c);
    }

    #[test]
    fn rebuild_sparse_matches_merge_sparse_on_live_parts() {
        // On parts that respect dead-colors-stay-dead, the tolerant
        // rebuild and the lossless merge agree exactly.
        let mut a = Configuration::from_counts(vec![4, 0, 3, 3]);
        let mut b = a.clone();
        let parts = [&[(0u32, 2u64), (3, 1)][..], &[(0, 3), (3, 1)][..]];
        a.merge_sparse(parts);
        b.rebuild_sparse(parts);
        assert_eq!(a, b);
        assert_caches_match_recount(&b);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rebuild_sparse_rejects_out_of_range_slots() {
        let mut c = Configuration::from_counts(vec![4, 0]);
        c.rebuild_sparse([&[(5u32, 1u64)][..]]);
    }

    #[test]
    fn apply_deltas_shifts_occupied_slots() {
        let mut c = Configuration::from_counts(vec![4, 0, 3, 3]);
        // Shard A: one unit 2 -> 0; shard B: two units 3 -> 0.
        c.apply_deltas([&[(2u32, -1i64), (0, 1)][..], &[(3, -2), (0, 2)][..]]);
        assert_eq!(c.counts(), &[7, 0, 2, 1]);
        assert_eq!(c.n(), 10);
        assert_eq!(c.max_support(), 7);
        assert_eq!(c.bias(), 5);
        assert_caches_match_recount(&c);
    }

    #[test]
    fn apply_deltas_drops_emptied_slots_and_rederives_mass() {
        let mut c = Configuration::from_counts(vec![4, 0, 3]);
        // Slot 2 dies; one unit of slot 0 leaves the decided pool
        // entirely (undecided dynamics), so n shrinks.
        c.apply_deltas([&[(2u32, -3i64)][..], &[(0, -1)][..]]);
        assert_eq!(c.counts(), &[3, 0, 0]);
        assert_eq!(c.occupied(), &[0]);
        assert_eq!(c.n(), 3);
        assert_caches_match_recount(&c);
    }

    #[test]
    fn apply_deltas_accumulates_same_slot_across_parts() {
        let mut c = Configuration::from_counts(vec![2, 5]);
        c.apply_deltas([&[(1u32, -2i64)][..], &[(1, -1), (0, 3)][..]]);
        assert_eq!(c.counts(), &[5, 2]);
        assert_eq!(c.n(), 7);
        assert_caches_match_recount(&c);
    }

    #[test]
    fn apply_deltas_with_no_parts_is_identity() {
        let mut c = Configuration::from_counts(vec![2, 1]);
        c.apply_deltas(std::iter::empty::<&[(u32, i64)]>());
        assert_eq!(c.counts(), &[2, 1]);
        assert_eq!(c.n(), 3);
    }

    #[test]
    #[should_panic(expected = "dead colors stay dead")]
    fn apply_deltas_rejects_resurrected_slots() {
        let mut c = Configuration::from_counts(vec![2, 0, 1]);
        c.apply_deltas([&[(1u32, 1i64), (0, -1)][..]]);
    }

    #[test]
    #[should_panic(expected = "went negative")]
    fn apply_deltas_rejects_negative_support() {
        let mut c = Configuration::from_counts(vec![2, 3]);
        c.apply_deltas([&[(0u32, -3i64)][..]]);
    }

    #[test]
    fn merge_sparse_with_no_parts_empties_the_configuration() {
        let mut c = Configuration::from_counts(vec![2, 1]);
        c.merge_sparse(std::iter::empty::<&[(u32, u64)]>());
        assert_eq!(c.num_colors(), 0);
        assert_eq!(c.n(), 0);
    }

    #[test]
    #[should_panic(expected = "dead colors stay dead")]
    fn merge_sparse_rejects_resurrected_slots() {
        let mut c = Configuration::from_counts(vec![2, 0, 1]);
        c.merge_sparse([&[(1u32, 1u64)][..]]);
    }

    #[test]
    fn shift_unit_plus_rebuild_keeps_caches_exact() {
        let mut c = Configuration::from_counts(vec![2, 1, 0]);
        c.shift_unit(Some(1), Some(2)); // last unit of color 1 moves to 2
        c.shift_unit(Some(0), None); // one unit leaves (goes undecided)
        c.shift_unit(None, Some(1)); // and one returns on a dead color
        c.rebuild_caches(); // batch of shifts, one refresh — the record pattern
        assert_eq!(c.counts(), &[1, 1, 1]);
        assert_eq!(c.occupied(), &[0, 1, 2]);
        assert_eq!(c.n(), 3);
        assert_caches_match_recount(&c);
    }

    #[test]
    fn shift_support_keeps_caches_exact_through_revive_and_death() {
        let mut c = Configuration::from_counts(vec![5, 3, 0, 2]);
        // Revive a dead slot with bulk mass.
        c.shift_support(Some(0), Some(2), 4);
        assert_eq!(c.counts(), &[1, 3, 4, 2]);
        assert_eq!(c.occupied(), &[0, 1, 2, 3]);
        assert_caches_match_recount(&c);
        // Kill a slot.
        c.shift_support(Some(0), Some(1), 1);
        assert_eq!(c.counts(), &[0, 4, 4, 2]);
        assert_eq!(c.occupied(), &[1, 2, 3]);
        assert_eq!(c.max_support(), 4);
        assert_eq!(c.bias(), 0);
        assert_caches_match_recount(&c);
        // Mass-changing shifts (units entering/leaving the configuration).
        c.shift_support(Some(3), None, 2);
        assert_eq!(c.n(), 8);
        assert_eq!(c.occupied(), &[1, 2]);
        assert_caches_match_recount(&c);
        c.shift_support(None, Some(0), 3);
        assert_eq!(c.n(), 11);
        assert_eq!(c.occupied(), &[0, 1, 2]);
        assert_caches_match_recount(&c);
        // No-ops.
        c.shift_support(Some(1), Some(1), 2);
        c.shift_support(Some(1), Some(0), 0);
        assert_caches_match_recount(&c);
        c.validate();
    }

    #[test]
    fn change_log_apply_matches_dense_rebuild() {
        // Pseudo-random unit-shift storms across many rounds: births,
        // deaths, leader growth and leader kills must all leave the
        // incrementally-maintained caches identical to a dense recount.
        let mut c = Configuration::from_counts(vec![0, 7, 1, 1, 0, 3]);
        let mut log = ChangeLog::new();
        log.ensure_slots(c.num_slots());
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        let mut next = |m: u64| {
            state = state
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1_442_695_040_888_963_407);
            (state >> 33) % m
        };
        for round in 0..300 {
            let shifts = next(5);
            for _ in 0..shifts {
                let occ = c.occupied().to_vec();
                if occ.is_empty() {
                    break;
                }
                let from = occ[next(occ.len() as u64) as usize] as usize;
                if c.support(from) == 0 {
                    // Drained earlier in this same round (the occupied
                    // list is intentionally stale between applies).
                    continue;
                }
                match next(10) {
                    // Occasionally trade mass against the outside
                    // (the undecided pool): n changes, counts stay exact.
                    0 => {
                        log.note(from, c.support(from));
                        c.shift_unit(Some(from), None);
                    }
                    1 => {
                        let to = next(c.num_slots() as u64) as usize;
                        log.note(to, c.support(to));
                        c.shift_unit(None, Some(to));
                    }
                    _ => {
                        let to = next(c.num_slots() as u64) as usize;
                        if to == from {
                            continue;
                        }
                        log.note(from, c.support(from));
                        log.note(to, c.support(to));
                        c.shift_unit(Some(from), Some(to));
                    }
                }
            }
            c.apply_change_log(&mut log);
            assert!(log.is_empty(), "apply must clear the log");
            assert_caches_match_recount(&c);
            // Every few rounds, exercise the empty-log fast path too.
            if round % 7 == 0 {
                c.apply_change_log(&mut log);
                assert_caches_match_recount(&c);
            }
        }
    }

    #[test]
    fn change_log_handles_leader_kill_and_overtake() {
        let mut c = Configuration::from_counts(vec![9, 6, 2]);
        let mut log = ChangeLog::new();
        log.ensure_slots(3);
        // Sync the leader identities with a no-op apply.
        c.apply_change_log(&mut log);
        // Kill the leader outright: the rescan path must find (6, 2).
        for _ in 0..9 {
            log.note(0, c.support(0));
            log.note(2, c.support(2));
            c.shift_unit(Some(0), Some(2));
        }
        c.apply_change_log(&mut log);
        assert_eq!((c.max_support(), c.bias()), (11, 5));
        assert_caches_match_recount(&c);
        // Shrink the leader (slot 2) while growing the runner-up past
        // it: a shrinking leader forces the rescan path again.
        for _ in 0..6 {
            log.note(2, c.support(2));
            log.note(1, c.support(1));
            c.shift_unit(Some(2), Some(1));
        }
        c.apply_change_log(&mut log);
        assert_eq!(c.counts(), &[0, 12, 5]);
        assert_eq!((c.max_support(), c.bias()), (12, 7));
        assert_caches_match_recount(&c);
        // Pure growth of a non-leader from outside mass: streaming
        // overtake with no leader shrink.
        for _ in 0..8 {
            log.note(0, c.support(0));
            c.shift_unit(None, Some(0));
        }
        c.apply_change_log(&mut log);
        assert_eq!(c.counts(), &[8, 12, 5]);
        assert_eq!((c.max_support(), c.bias()), (12, 4));
        assert_caches_match_recount(&c);
    }

    #[test]
    #[should_panic(expected = "holds")]
    fn shift_support_rejects_overdraw() {
        let mut c = Configuration::from_counts(vec![2, 1]);
        c.shift_support(Some(1), Some(0), 5);
    }

    #[test]
    fn compact_in_place_matches_compacted() {
        let mut c = Configuration::from_counts(vec![0, 4, 0, 2, 0, 1]);
        let expect = c.compacted();
        c.compact_in_place();
        assert_eq!(c, expect);
        assert_eq!(c.num_slots(), 3);
        assert_eq!(c.occupied(), &[0, 1, 2]);
        assert_caches_match_recount(&c);
        // Idempotent on already-compact configurations.
        c.compact_in_place();
        assert_eq!(c, expect);
    }

    #[test]
    fn compact_in_place_on_empty_keeps_one_slot() {
        let mut c = Configuration::from_counts(vec![0, 0, 0]);
        c.compact_in_place();
        assert_eq!(c.counts(), &[0]);
        assert_eq!(c.num_colors(), 0);
        assert_eq!(c.n(), 0);
    }
}
