//! Configurations: the system state `c ∈ N₀^k` with `Σ cᵢ = n`.
//!
//! The paper describes the state of the complete graph purely by the
//! support counts of each color (Section 2.1). [`Configuration`] maintains
//! that vector together with the invariant `Σ cᵢ = n` and exposes the
//! observables the analysis tracks: number of remaining colors, maximum
//! support, bias, and the majorization preorder.

use symbreak_majorization::vector as major;

use crate::opinion::Opinion;

/// A population configuration: `counts[i]` nodes currently support color
/// `i`; the total is the population size `n`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Configuration {
    counts: Vec<u64>,
    n: u64,
}

impl Configuration {
    /// Creates a configuration from explicit per-color counts.
    ///
    /// Trailing zero colors are retained (color identity is positional).
    ///
    /// # Panics
    /// Panics if `counts` is empty.
    pub fn from_counts(counts: Vec<u64>) -> Self {
        assert!(!counts.is_empty(), "configuration needs at least one color slot");
        let n = counts.iter().sum();
        Self { counts, n }
    }

    /// The consensus configuration: all `n` nodes on one color (slot 0 of
    /// `k` slots).
    pub fn consensus(n: u64, k: usize) -> Self {
        assert!(k >= 1, "need at least one color slot");
        let mut counts = vec![0; k];
        counts[0] = n;
        Self { counts, n }
    }

    /// The balanced configuration on `k` colors: each color has `n/k`
    /// nodes, with the remainder spread over the first `n mod k` colors.
    pub fn uniform(n: u64, k: usize) -> Self {
        assert!(k >= 1, "need at least one color");
        assert!(n >= k as u64, "need at least one node per color");
        let base = n / k as u64;
        let extra = (n % k as u64) as usize;
        let counts = (0..k).map(|i| base + u64::from(i < extra)).collect();
        Self { counts, n }
    }

    /// The leader-election start: `n` nodes with pairwise distinct colors.
    pub fn singletons(n: u64) -> Self {
        assert!(n >= 1, "need at least one node");
        Self { counts: vec![1; n as usize], n }
    }

    /// A biased configuration: color 0 receives `bias` extra nodes, the
    /// rest is split as evenly as possible over all `k` colors.
    ///
    /// # Panics
    /// Panics if `bias > n` or `n − bias < k`.
    pub fn biased(n: u64, k: usize, bias: u64) -> Self {
        assert!(bias <= n, "bias cannot exceed n");
        let rest = n - bias;
        let mut cfg = Self::uniform(rest, k);
        cfg.counts[0] += bias;
        cfg.n = n;
        cfg
    }

    /// Population size `n`.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Number of color slots `k` (including empty ones).
    pub fn num_slots(&self) -> usize {
        self.counts.len()
    }

    /// Number of colors with non-zero support ("remaining colors").
    pub fn num_colors(&self) -> usize {
        self.counts.iter().filter(|&&c| c > 0).count()
    }

    /// Support of color `i` (0 for out-of-range slots).
    pub fn support(&self, i: usize) -> u64 {
        self.counts.get(i).copied().unwrap_or(0)
    }

    /// The raw count vector.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Mutable access for processes that rewrite supports directly (e.g.
    /// the adversary). The caller must restore `Σ cᵢ = n`; this is checked
    /// in debug builds on the next [`Configuration::validate`] call.
    pub fn counts_mut(&mut self) -> &mut Vec<u64> {
        &mut self.counts
    }

    /// Recomputes and checks the population invariant after raw mutation.
    ///
    /// # Panics
    /// Panics if the counts no longer sum to `n`.
    pub fn validate(&self) {
        let total: u64 = self.counts.iter().sum();
        assert_eq!(total, self.n, "configuration mass changed: {total} != {}", self.n);
    }

    /// Re-synchronizes `n` with the counts after deliberate mass change.
    pub fn resync_total(&mut self) {
        self.n = self.counts.iter().sum();
    }

    /// Largest support `maxᵢ cᵢ`.
    pub fn max_support(&self) -> u64 {
        self.counts.iter().copied().max().unwrap_or(0)
    }

    /// The color with the largest support (smallest index wins ties).
    pub fn plurality(&self) -> Opinion {
        let (i, _) = self
            .counts
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(&a.0)))
            .expect("non-empty configuration");
        Opinion::new(i as u32)
    }

    /// The bias: difference between the largest and second-largest support
    /// (footnote 3 of the paper).
    pub fn bias(&self) -> u64 {
        let mut first = 0u64;
        let mut second = 0u64;
        for &c in &self.counts {
            if c >= first {
                second = first;
                first = c;
            } else if c > second {
                second = c;
            }
        }
        first - second
    }

    /// Whether all nodes support a single color.
    pub fn is_consensus(&self) -> bool {
        self.num_colors() <= 1
    }

    /// Fractions `x = c / n`.
    pub fn fractions(&self) -> Vec<f64> {
        let n = self.n as f64;
        self.counts.iter().map(|&c| c as f64 / n).collect()
    }

    /// `‖x‖₂² = Σ (cᵢ/n)²` — the collision probability appearing in the
    /// 3-Majority process function (Equation (2)).
    pub fn l2_norm_sq(&self) -> f64 {
        let n = self.n as f64;
        self.counts.iter().map(|&c| (c as f64 / n).powi(2)).sum()
    }

    /// Whether `self ⪰ other` in the majorization preorder (requires equal
    /// population sizes).
    pub fn majorizes(&self, other: &Configuration) -> bool {
        if self.n != other.n {
            return false;
        }
        let a: Vec<f64> = self.counts.iter().map(|&c| c as f64).collect();
        let b: Vec<f64> = other.counts.iter().map(|&c| c as f64).collect();
        major::majorizes_eps(&a, &b, 0.5) // counts are integers; 0.5 is exact
    }

    /// Returns a copy with zero-support slots removed.
    ///
    /// Color *identity* is positional, so compaction renumbers the
    /// surviving colors; use it only for observables that are
    /// permutation-invariant (consensus time, number of colors, max
    /// support, bias, majorization) — which is everything the paper's
    /// analysis tracks. Compaction is what keeps long vectorized runs at
    /// `O(remaining colors)` per round instead of `O(initial colors)`.
    pub fn compacted(&self) -> Configuration {
        let counts: Vec<u64> = self.counts.iter().copied().filter(|&c| c > 0).collect();
        if counts.is_empty() {
            // Preserve a slot so the invariant "at least one slot" holds.
            return Configuration { counts: vec![0], n: 0 };
        }
        Configuration { counts, n: self.n }
    }

    /// Counts sorted in non-increasing order.
    pub fn sorted_counts(&self) -> Vec<u64> {
        let mut v = self.counts.clone();
        v.sort_unstable_by(|a, b| b.cmp(a));
        v
    }

    /// Expands a per-node opinion assignment from the counts: nodes
    /// `0..c₀` get color 0, the next `c₁` color 1, and so on.
    pub fn to_opinions(&self) -> Vec<Opinion> {
        let mut out = Vec::with_capacity(self.n as usize);
        for (i, &c) in self.counts.iter().enumerate() {
            out.extend(std::iter::repeat_n(Opinion::new(i as u32), c as usize));
        }
        out
    }

    /// Rebuilds a configuration from per-node opinions, ignoring undecided
    /// nodes (their mass is dropped — callers tracking undecided counts
    /// must do so separately).
    pub fn from_opinions(opinions: &[Opinion], k: usize) -> Self {
        let mut counts = vec![0u64; k];
        for &o in opinions {
            if !o.is_undecided() {
                counts[o.index()] += 1;
            }
        }
        let n = counts.iter().sum();
        Self { counts, n }
    }
}

impl std::fmt::Display for Configuration {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Configuration(n={}, colors={}, max={}, bias={})",
            self.n,
            self.num_colors(),
            self.max_support(),
            self.bias()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_have_right_mass() {
        assert_eq!(Configuration::consensus(10, 3).n(), 10);
        assert_eq!(Configuration::uniform(10, 3).n(), 10);
        assert_eq!(Configuration::singletons(7).n(), 7);
        assert_eq!(Configuration::biased(20, 4, 8).n(), 20);
    }

    #[test]
    fn uniform_spreads_remainder() {
        let c = Configuration::uniform(11, 4);
        assert_eq!(c.counts(), &[3, 3, 3, 2]);
        assert_eq!(c.num_colors(), 4);
    }

    #[test]
    fn singletons_is_leader_election_start() {
        let c = Configuration::singletons(5);
        assert_eq!(c.num_colors(), 5);
        assert_eq!(c.max_support(), 1);
        assert_eq!(c.bias(), 0);
    }

    #[test]
    fn biased_config_shape() {
        let c = Configuration::biased(100, 4, 40);
        assert_eq!(c.support(0), 55); // 15 + 40
        assert_eq!(c.support(1), 15);
        assert_eq!(c.bias(), 40);
        assert_eq!(c.n(), 100);
    }

    #[test]
    fn consensus_flags() {
        let c = Configuration::consensus(9, 4);
        assert!(c.is_consensus());
        assert_eq!(c.num_colors(), 1);
        assert_eq!(c.plurality(), Opinion::new(0));
        assert!(!Configuration::uniform(9, 3).is_consensus());
    }

    #[test]
    fn bias_of_tied_leaders_is_zero() {
        let c = Configuration::from_counts(vec![5, 5, 2]);
        assert_eq!(c.bias(), 0);
        let d = Configuration::from_counts(vec![7, 4, 1]);
        assert_eq!(d.bias(), 3);
    }

    #[test]
    fn single_color_bias_is_full_support() {
        // With one color the second-largest support is 0.
        let c = Configuration::from_counts(vec![6]);
        assert_eq!(c.bias(), 6);
    }

    #[test]
    fn majorization_of_configurations() {
        let consensus = Configuration::consensus(12, 4);
        let uniform = Configuration::uniform(12, 4);
        let mid = Configuration::from_counts(vec![6, 3, 2, 1]);
        assert!(consensus.majorizes(&uniform));
        assert!(consensus.majorizes(&mid));
        assert!(mid.majorizes(&uniform));
        assert!(!uniform.majorizes(&mid));
        // Different n: incomparable.
        assert!(!consensus.majorizes(&Configuration::consensus(13, 4)));
    }

    #[test]
    fn l2_norm_sq_examples() {
        let c = Configuration::uniform(4, 2); // (1/2)^2 * 2 = 1/2
        assert!((c.l2_norm_sq() - 0.5).abs() < 1e-12);
        let d = Configuration::consensus(4, 2);
        assert!((d.l2_norm_sq() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn opinions_round_trip() {
        let c = Configuration::from_counts(vec![2, 0, 3]);
        let ops = c.to_opinions();
        assert_eq!(ops.len(), 5);
        let back = Configuration::from_opinions(&ops, 3);
        assert_eq!(back, c);
    }

    #[test]
    fn from_opinions_ignores_undecided() {
        let ops = vec![Opinion::new(0), Opinion::UNDECIDED, Opinion::new(0)];
        let c = Configuration::from_opinions(&ops, 1);
        assert_eq!(c.counts(), &[2]);
        assert_eq!(c.n(), 2);
    }

    #[test]
    fn plurality_prefers_smallest_index_on_tie() {
        let c = Configuration::from_counts(vec![3, 5, 5]);
        assert_eq!(c.plurality(), Opinion::new(1));
    }

    #[test]
    fn mutation_and_validate() {
        let mut c = Configuration::uniform(6, 3);
        c.counts_mut()[0] += 1;
        c.counts_mut()[1] -= 1;
        c.validate(); // mass preserved
        c.counts_mut()[2] += 5;
        c.resync_total();
        assert_eq!(c.n(), 11);
    }

    #[test]
    #[should_panic(expected = "mass changed")]
    fn validate_catches_mass_change() {
        let mut c = Configuration::uniform(6, 3);
        c.counts_mut()[0] += 1;
        c.validate();
    }

    #[test]
    fn fractions_sum_to_one() {
        let c = Configuration::from_counts(vec![1, 2, 3, 4]);
        let s: f64 = c.fractions().iter().sum();
        assert!((s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sorted_counts_desc() {
        let c = Configuration::from_counts(vec![1, 5, 3]);
        assert_eq!(c.sorted_counts(), vec![5, 3, 1]);
    }

    #[test]
    fn display_contains_observables() {
        let c = Configuration::uniform(10, 2);
        let s = format!("{c}");
        assert!(s.contains("n=10"));
        assert!(s.contains("colors=2"));
    }
}
