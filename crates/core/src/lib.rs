#![warn(missing_docs)]
//! `symbreak-core` — the consensus processes and comparison framework of
//! *"Ignore or Comply? On Breaking Symmetry in Consensus"* (Berenbrink,
//! Clementi, Elsässer, Kling, Mallmann-Trenn, Natale; PODC 2017).
//!
//! The paper studies synchronous pull-based consensus on the complete graph
//! of `n` anonymous nodes, comparing the **2-Choices** rule (ignore a
//! sample mismatch) with **3-Majority** (comply with a fresh sample), and
//! proves a polynomial separation between them from many-color
//! configurations. This crate implements:
//!
//! * [`config::Configuration`] — the state vector `c ∈ N₀^k`, `Σcᵢ = n`,
//!   occupancy-aware (occupied-slot list + cached observables), with the
//!   observables the analysis tracks (remaining colors, max support,
//!   bias, majorization) in `O(1)`.
//! * [`process`] — the AC-process abstraction of Definition 1
//!   ([`process::AcProcess`]) together with agent-level
//!   ([`process::UpdateRule`]) and expectation-level
//!   ([`process::ExpectedUpdate`]) semantics.
//! * [`rules`] — Voter, 2-Choices, 3-Majority (direct and the paper's
//!   2-Choices+Voter reformulation), h-Majority, 2-Median, and the
//!   undecided-state dynamics.
//! * [`engine`] — agent-level (`O(nh)`/round) and vectorized
//!   (allocation-free, `O(#occupied)`/round) engines with identical
//!   distributions.
//! * [`run`] — consensus runners and the hitting times `T^κ`.
//! * [`dominance`] — Definition 2 and the Lemma 2 inequality
//!   `α^{(3M)}(c) ⪰ α^{(V)}(c̃)`.
//! * [`theory`] — the paper's bound curves (Theorems 1/4/5/8, Lemma 3).
//! * [`counterexample`] — Appendix B in exact rational arithmetic.
//!
//! # Quickstart
//!
//! ```
//! use symbreak_core::config::Configuration;
//! use symbreak_core::engine::{Engine, VectorEngine};
//! use symbreak_core::rules::ThreeMajority;
//! use symbreak_core::run::{run_to_consensus, RunOptions};
//!
//! // 1024 nodes, every node its own color (leader election).
//! let start = Configuration::singletons(1024);
//! let mut engine = VectorEngine::new(ThreeMajority, start, 42);
//! let outcome = run_to_consensus(&mut engine, &RunOptions::default());
//! assert!(outcome.reached_consensus());
//! ```

pub mod config;
pub mod counterexample;
pub mod dominance;
pub mod engine;
pub mod opinion;
pub mod phases;
pub mod potential;
pub mod process;
pub mod rules;
pub mod run;
pub mod theory;

pub use config::{ChangeLog, Configuration};
pub use engine::{AgentEngine, Engine, RoundStateMode, SamplingMode, VectorEngine};
pub use opinion::Opinion;
pub use process::{
    condensed_window_step_by_dealing, AcProcess, ExpectedUpdate, MultisetRule, SampleAccess,
    UpdateRule, VectorStep,
};
pub use run::{hitting_time_colors, run_to_consensus, RunOptions, RunOutcome};
