//! Cross-validation of the occupancy-aware engine stack.
//!
//! Two layers of guarantees:
//!
//! 1. **Seed-exact equivalence** — for every rule, the sparse in-place
//!    `vector_step_into` consumes the RNG identically to the dense
//!    `vector_step` (empty slots draw from degenerate binomials there,
//!    which cost no randomness), so from the same generator state the two
//!    paths produce *identical* configurations, not merely the same law.
//! 2. **Cache integrity** — after sparse steps, raw `counts_mut`
//!    mutation, and agent-engine rounds (which maintain the caches
//!    incrementally through `record`), every cached observable matches a
//!    from-scratch recount of the raw counts.
//!
//! Plus an E7-style one-round mean-agreement check for the new 2-Median
//! vector step against its agent-level semantics.

use proptest::prelude::*;
use rand::SeedableRng;
use symbreak_core::rules::{
    HMajority, LazyVoter, ThreeMajority, ThreeMajorityAlt, TwoChoices, TwoMedian,
    UndecidedDynamics, Voter,
};
use symbreak_core::{AgentEngine, Configuration, Engine, VectorEngine, VectorStep};
use symbreak_sim::rng::Pcg64;

fn counts_strategy(k: usize, max: u64) -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(0u64..max, k)
        .prop_filter("at least one node", |c| c.iter().sum::<u64>() > 0)
}

/// Every rule with a vector step, type-erased.
fn vector_rules() -> Vec<(&'static str, Box<dyn VectorStep>)> {
    vec![
        ("Voter", Box::new(Voter)),
        ("3-Majority", Box::new(ThreeMajority)),
        ("3-Majority-alt", Box::new(ThreeMajorityAlt)),
        ("2-Choices", Box::new(TwoChoices)),
        ("Lazy Voter", Box::new(LazyVoter::half())),
        ("4-Majority", Box::new(HMajority::new(4))),
        ("2-Median", Box::new(TwoMedian)),
    ]
}

/// Asserts that every cached observable of `c` equals a from-scratch
/// recount of its raw counts.
fn check_caches(c: &Configuration) -> Result<(), TestCaseError> {
    let counts = c.counts();
    let colors = counts.iter().filter(|&&v| v > 0).count();
    let max = counts.iter().copied().max().unwrap_or(0);
    let mut first = 0u64;
    let mut second = 0u64;
    for &v in counts {
        if v >= first {
            second = first;
            first = v;
        } else if v > second {
            second = v;
        }
    }
    let n = counts.iter().sum::<u64>();
    let l2: f64 = counts.iter().map(|&v| (v as f64 / n as f64).powi(2)).sum();
    let occupied: Vec<u32> =
        (0..counts.len()).filter(|&i| counts[i] > 0).map(|i| i as u32).collect();
    prop_assert_eq!(c.n(), n);
    prop_assert_eq!(c.num_colors(), colors);
    prop_assert_eq!(c.max_support(), max);
    prop_assert_eq!(c.bias(), first - second);
    prop_assert_eq!(c.occupied(), &occupied[..]);
    prop_assert!((c.l2_norm_sq() - l2).abs() < 1e-12, "l2 {} vs recount {}", c.l2_norm_sq(), l2);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn sparse_step_is_seed_exact_for_every_rule(
        counts in counts_strategy(8, 40),
        seed in 0u64..10_000,
    ) {
        for (name, rule) in vector_rules() {
            let start = Configuration::from_counts(counts.clone());
            let mut dense_rng = Pcg64::seed_from_u64(seed);
            let mut sparse_rng = Pcg64::seed_from_u64(seed);
            let mut dense = start.clone();
            let mut sparse = start;
            for round in 0..3 {
                dense = rule.vector_step(&dense, &mut dense_rng);
                rule.vector_step_into(&mut sparse, &mut sparse_rng);
                prop_assert_eq!(
                    dense.counts(),
                    sparse.counts(),
                    "{name} diverged at round {round}: {:?} vs {:?}",
                    dense.counts(),
                    sparse.counts()
                );
                prop_assert_eq!(dense.n(), sparse.n());
                check_caches(&sparse)?;
            }
        }
    }

    #[test]
    fn caches_survive_sparse_steps_and_raw_mutation(
        counts in counts_strategy(6, 30),
        seed in 0u64..10_000,
    ) {
        let mut c = Configuration::from_counts(counts);
        let mut rng = Pcg64::seed_from_u64(seed);
        for _ in 0..4 {
            ThreeMajority.vector_step_into(&mut c, &mut rng);
            check_caches(&c)?;
        }
        // Raw mutation through the guard must refresh the caches too.
        let donor = c.plurality().index();
        {
            let mut counts = c.counts_mut();
            let v = counts[donor];
            counts[donor] = 0;
            counts[0] += v;
        }
        c.validate();
        check_caches(&c)?;
    }

    #[test]
    fn agent_engine_caches_match_recount(
        counts in counts_strategy(5, 20),
        seed in 0u64..5_000,
    ) {
        // 3-Majority exercises decided↔decided shifts; the undecided
        // dynamics exercises mass entering and leaving the configuration.
        let c = Configuration::from_counts(counts);
        let mut majority = AgentEngine::new(ThreeMajority, &c, seed);
        let mut undecided = AgentEngine::new(UndecidedDynamics, &c, seed ^ 0x9E37);
        for _ in 0..4 {
            majority.step();
            check_caches(majority.config_ref())?;
            undecided.step();
            check_caches(undecided.config_ref())?;
            prop_assert_eq!(undecided.config_ref().n() + undecided.undecided(), c.n());
        }
    }
}

/// Binomial 5-sigma tolerance on a mean of `trials` supports.
fn tol(n: u64, mean: f64, trials: u64) -> f64 {
    let p = (mean / n as f64).clamp(0.0, 1.0);
    5.0 * (n as f64 * p * (1.0 - p) / trials as f64).sqrt() + 0.5
}

#[test]
fn two_median_vector_step_matches_agent_means() {
    // E7-style: one-round mean supports of the new 2-Median vector step
    // vs the literal agent-level semantics.
    let start = Configuration::from_counts(vec![25, 10, 40, 0, 25]);
    let n = start.n();
    let trials = 4_000u64;
    let k = start.num_slots();
    let mut agent_sums = vec![0u64; k];
    let mut vector_sums = vec![0u64; k];
    for t in 0..trials {
        let mut a = AgentEngine::new(TwoMedian, &start, 500 + t);
        a.step();
        for (s, &c) in agent_sums.iter_mut().zip(a.config_ref().counts()) {
            *s += c;
        }
        let mut v = VectorEngine::new(TwoMedian, start.clone(), 9_500 + t);
        v.step();
        for (s, &c) in vector_sums.iter_mut().zip(v.config_ref().counts()) {
            *s += c;
        }
    }
    for i in 0..k {
        let ma = agent_sums[i] as f64 / trials as f64;
        let mv = vector_sums[i] as f64 / trials as f64;
        let t = tol(n, ma, trials);
        assert!((ma - mv).abs() < t, "value {i}: agent mean {ma} vs vector mean {mv} (tol {t})");
    }
}

#[test]
fn two_median_vector_engine_reaches_consensus() {
    // The vector step also has the right long-run behaviour: 2-Median
    // contracts to a single value.
    let start = Configuration::from_counts(vec![20, 5, 15, 8, 12]);
    let mut e = VectorEngine::new(TwoMedian, start, 11);
    let mut rounds = 0;
    while !e.is_consensus() && rounds < 100_000 {
        e.step();
        rounds += 1;
    }
    assert!(e.is_consensus(), "no consensus after {rounds} rounds");
    assert_eq!(e.config_ref().n(), 60);
}

#[test]
fn singleton_vector_trajectory_stays_exact() {
    // The Theorem-5 workload in miniature: a plain (non-compacting)
    // VectorEngine from the singleton start keeps positional identity
    // (num_slots == k forever) while the occupancy caches track the
    // shrinking support exactly.
    let n = 512u64;
    let mut e = VectorEngine::new(ThreeMajority, Configuration::singletons(n), 21);
    let mut rounds = 0;
    while !e.is_consensus() && rounds < 100_000 {
        e.step();
        rounds += 1;
        let c = e.config_ref();
        assert_eq!(c.num_slots(), n as usize, "no slot is ever dropped");
        assert_eq!(c.n(), n, "population preserved");
        assert_eq!(
            c.num_colors(),
            c.counts().iter().filter(|&&v| v > 0).count(),
            "occupancy cache exact at round {rounds}"
        );
    }
    assert!(e.is_consensus());
    assert_eq!(e.num_colors(), 1);
    assert_eq!(e.max_support(), n);
    assert_eq!(e.bias(), n);
}
