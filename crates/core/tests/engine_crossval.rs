//! E7-style cross-validation of the agent engine's sampling modes.
//!
//! The alias-table path (with its run-length fast form) and the native
//! `SampleAccess` dispatch (multiset window splits, single-peer draws)
//! must be distributionally identical to the seed's per-node path — and
//! all of them, for processes with a vector step, to the exact one-step
//! law. The checks compare one-round means over many trials for
//! 3-Majority, Voter, and 2-Choices, from starts chosen to exercise
//! every sampler form: alias / run-length / constant rounds, and both
//! multiset sub-paths (the cached-binomial window walk at low occupancy
//! and the tallying fallback at singleton starts).

use symbreak_core::rules::{HMajority, ThreeMajority, TwoChoices, UndecidedDynamics, Voter};
use symbreak_core::{
    AgentEngine, Configuration, Engine, SamplingMode, UpdateRule, VectorEngine, VectorStep,
};

/// Mean per-color supports (plus undecided mean) after one agent-engine
/// round over `trials` trials.
fn one_step_agent_means<R: UpdateRule + Clone>(
    rule: R,
    start: &Configuration,
    mode: SamplingMode,
    trials: u64,
    seed: u64,
) -> (Vec<f64>, f64) {
    let k = start.num_slots();
    let mut sums = vec![0u64; k];
    let mut undecided = 0u64;
    for t in 0..trials {
        let mut e = AgentEngine::with_sampling(rule.clone(), start, seed + t, mode);
        e.step();
        for (s, &c) in sums.iter_mut().zip(e.configuration().counts()) {
            *s += c;
        }
        undecided += e.undecided();
    }
    (sums.iter().map(|&s| s as f64 / trials as f64).collect(), undecided as f64 / trials as f64)
}

/// Mean per-color supports after one exact vector-step round.
fn one_step_vector_means<R: VectorStep + Clone>(
    rule: R,
    start: &Configuration,
    trials: u64,
    seed: u64,
) -> Vec<f64> {
    let k = start.num_slots();
    let mut sums = vec![0u64; k];
    for t in 0..trials {
        let mut e = VectorEngine::new(rule.clone(), start.clone(), seed + t);
        e.step();
        for (s, &c) in sums.iter_mut().zip(e.configuration().counts()) {
            *s += c;
        }
    }
    sums.iter().map(|&s| s as f64 / trials as f64).collect()
}

/// Binomial 5-sigma tolerance on a mean of `trials` supports.
fn tol(n: u64, mean: f64, trials: u64) -> f64 {
    let p = (mean / n as f64).clamp(0.0, 1.0);
    5.0 * (n as f64 * p * (1.0 - p) / trials as f64).sqrt() + 0.5
}

fn crossval<R>(rule: R, start: Configuration, trials: u64, seed: u64)
where
    R: UpdateRule + VectorStep + Clone,
{
    let n = start.n();
    let (alias, alias_undecided) =
        one_step_agent_means(rule.clone(), &start, SamplingMode::AliasTable, trials, seed);
    let (per_node, per_node_undecided) =
        one_step_agent_means(rule.clone(), &start, SamplingMode::PerNode, trials, seed + trials);
    let (native, native_undecided) =
        one_step_agent_means(rule.clone(), &start, SamplingMode::Native, trials, seed + 3 * trials);
    let vector = one_step_vector_means(rule, &start, trials, seed + 2 * trials);
    for i in 0..start.num_slots() {
        let t = tol(n, per_node[i], trials);
        assert!(
            (alias[i] - per_node[i]).abs() < t,
            "color {i}: alias mean {} vs per-node mean {} (tol {t})",
            alias[i],
            per_node[i]
        );
        assert!(
            (alias[i] - vector[i]).abs() < t,
            "color {i}: alias mean {} vs vector mean {} (tol {t})",
            alias[i],
            vector[i]
        );
        assert!(
            (native[i] - per_node[i]).abs() < t,
            "color {i}: native mean {} vs per-node mean {} (tol {t})",
            native[i],
            per_node[i]
        );
    }
    assert!(
        (alias_undecided - per_node_undecided).abs() < tol(n, per_node_undecided.max(1.0), trials),
        "undecided: alias {alias_undecided} vs per-node {per_node_undecided}"
    );
    assert!(
        (native_undecided - per_node_undecided).abs() < tol(n, per_node_undecided.max(1.0), trials),
        "undecided: native {native_undecided} vs per-node {per_node_undecided}"
    );
}

#[test]
fn three_majority_alias_matches_per_node_and_vector() {
    // p_top = 0.5: the run-length sampler form.
    crossval(ThreeMajority, Configuration::from_counts(vec![30, 20, 10]), 4_000, 100);
    // Near-uniform: the alias form.
    crossval(ThreeMajority, Configuration::from_counts(vec![22, 18, 20, 21, 19]), 4_000, 10_000);
}

#[test]
fn voter_alias_matches_per_node_and_vector() {
    crossval(Voter, Configuration::from_counts(vec![60, 25, 15]), 4_000, 200);
    crossval(Voter, Configuration::from_counts(vec![10, 12, 9, 11, 8, 10]), 4_000, 20_000);
}

#[test]
fn two_choices_alias_matches_per_node_and_vector() {
    crossval(TwoChoices, Configuration::from_counts(vec![70, 20, 10]), 4_000, 300);
    crossval(TwoChoices, Configuration::from_counts(vec![15, 14, 16, 15]), 4_000, 30_000);
}

#[test]
fn absorbed_round_is_a_fixed_point_in_every_mode() {
    // Consensus uses the constant sampler form (and the multiset path's
    // single-category window); it must stay absorbed.
    let start = Configuration::consensus(500, 4);
    for mode in [SamplingMode::Native, SamplingMode::AliasTable, SamplingMode::PerNode] {
        let mut e = AgentEngine::with_sampling(ThreeMajority, &start, 9, mode);
        for _ in 0..5 {
            e.step();
        }
        assert!(e.is_consensus());
        assert_eq!(e.configuration().support(0), 500);
    }
}

#[test]
fn multiset_dispatch_matches_ordered_at_singleton_start() {
    // k = n singletons: the multiset path's diverse tallying fallback
    // (d > 16 live categories). h-Majority's exact-alpha vector step
    // cannot enumerate k = 96, so 3-Majority carries this regime (the
    // low-occupancy test below covers h-Majority's multiset path).
    crossval(ThreeMajority, Configuration::singletons(96), 3_000, 50_000);
}

#[test]
fn multiset_dispatch_matches_ordered_at_low_occupancy() {
    // Few live colors: the cached-binomial WindowMultinomial walk.
    crossval(ThreeMajority, Configuration::from_counts(vec![70, 20, 10]), 4_000, 70_000);
    crossval(HMajority::new(5), Configuration::from_counts(vec![55, 30, 15]), 2_000, 80_000);
}

#[test]
fn single_peer_dispatch_matches_ordered_for_voter() {
    // Voter's native path draws one categorical per node; both the
    // run-length (concentrated) and alias (diverse) sampler forms.
    crossval(Voter, Configuration::from_counts(vec![80, 15, 5]), 4_000, 90_000);
    crossval(Voter, Configuration::singletons(64), 3_000, 100_000);
}

#[test]
fn undecided_multiset_dispatch_matches_ordered() {
    // The undecided dynamics has no vector step, so compare the agent
    // modes directly. For h = 1 rules Native deliberately short-circuits
    // to the alias path (a one-draw window walk can never pay), so this
    // is a sanity pin that the short-circuit changes nothing in law —
    // the rule's *real* native path is on the cluster wire, pinned by
    // `native_undecided_consumption_matches_ordered` in
    // crates/runtime/tests/cluster_crossval.rs.
    let start = Configuration::from_counts(vec![40, 30, 20]);
    let trials = 4_000u64;
    let two_step_means = |mode: SamplingMode, base: u64| {
        let k = start.num_slots();
        let mut sums = vec![0u64; k];
        let mut undecided = 0u64;
        for t in 0..trials {
            let mut e = AgentEngine::with_sampling(UndecidedDynamics, &start, base + t, mode);
            e.step();
            e.step();
            for (s, &c) in sums.iter_mut().zip(e.config_ref().counts()) {
                *s += c;
            }
            undecided += e.undecided();
        }
        let means: Vec<f64> = sums.iter().map(|&s| s as f64 / trials as f64).collect();
        (means, undecided as f64 / trials as f64)
    };
    let (native, native_u) = two_step_means(SamplingMode::Native, 110_000);
    let (ordered, ordered_u) = two_step_means(SamplingMode::AliasTable, 120_000);
    let n = start.n();
    for i in 0..start.num_slots() {
        let t = tol(n, ordered[i], trials);
        assert!(
            (native[i] - ordered[i]).abs() < t,
            "color {i}: native {} vs ordered {} (tol {t})",
            native[i],
            ordered[i]
        );
    }
    assert!(
        (native_u - ordered_u).abs() < tol(n, ordered_u, trials),
        "undecided: native {native_u} vs ordered {ordered_u}"
    );
}

#[test]
fn consensus_time_law_agrees_between_modes() {
    // Beyond one-step means: full consensus-time means over trials must
    // agree between the two sampling modes (Voter, small instance).
    let start = Configuration::uniform(48, 6);
    let mean_time = |mode: SamplingMode, base: u64| {
        let trials = 300u64;
        let total: u64 = (0..trials)
            .map(|t| {
                let mut e = AgentEngine::with_sampling(Voter, &start, base + t, mode);
                let mut rounds = 0u64;
                while !e.is_consensus() && rounds < 1_000_000 {
                    e.step();
                    rounds += 1;
                }
                assert!(e.is_consensus());
                rounds
            })
            .sum();
        total as f64 / trials as f64
    };
    let alias = mean_time(SamplingMode::AliasTable, 40_000);
    let per_node = mean_time(SamplingMode::PerNode, 80_000);
    assert!(
        (alias - per_node).abs() < 0.2 * per_node,
        "consensus-time law diverged: alias {alias} vs per-node {per_node}"
    );
}
