//! Property-based tests of the rule/engine layer.

use proptest::prelude::*;
use symbreak_core::counterexample::{alpha_h_majority_exact, rational_majorizes, Rational};
use symbreak_core::process::{assert_probability_vector, AcProcess, ExpectedUpdate};
use symbreak_core::rules::{HMajority, LazyVoter, ThreeMajority, TwoChoices, TwoMedian, Voter};
use symbreak_core::{AgentEngine, Configuration, Engine};

fn counts_strategy(k: usize, max: u64) -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(0u64..max, k)
        .prop_filter("at least one node", |c| c.iter().sum::<u64>() > 0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn h_majority_alpha_is_probability_vector(
        counts in counts_strategy(5, 20),
        h in 1usize..6,
    ) {
        let c = Configuration::from_counts(counts);
        assert_probability_vector(&HMajority::new(h).alpha(&c));
    }

    #[test]
    fn expected_updates_are_probability_vectors(counts in counts_strategy(6, 30)) {
        let c = Configuration::from_counts(counts);
        assert_probability_vector(&Voter.expected_fractions(&c));
        assert_probability_vector(&TwoChoices.expected_fractions(&c));
        assert_probability_vector(&ThreeMajority.expected_fractions(&c));
        assert_probability_vector(&TwoMedian.expected_fractions(&c));
        assert_probability_vector(&LazyVoter::half().expected_fractions(&c));
    }

    #[test]
    fn dead_colors_stay_dead_in_expectation(counts in counts_strategy(6, 30)) {
        // No process can give probability to an unsupported color.
        let c = Configuration::from_counts(counts);
        for (i, &cnt) in c.counts().iter().enumerate() {
            if cnt == 0 {
                prop_assert_eq!(ThreeMajority.expected_fractions(&c)[i], 0.0);
                prop_assert_eq!(TwoChoices.expected_fractions(&c)[i], 0.0);
                prop_assert_eq!(Voter.expected_fractions(&c)[i], 0.0);
            }
        }
    }

    #[test]
    fn agent_engine_population_invariant(
        counts in counts_strategy(4, 25),
        seed in 0u64..5_000,
    ) {
        let c = Configuration::from_counts(counts);
        let mut e = AgentEngine::new(ThreeMajority, &c, seed);
        for _ in 0..5 {
            e.step();
            prop_assert_eq!(e.configuration().n() + e.undecided(), c.n());
        }
    }

    #[test]
    fn three_majority_alpha_majorizes_voter_alpha(counts in counts_strategy(5, 30)) {
        // Lemma 2's c = c̃ case as a property over the whole space.
        let c = Configuration::from_counts(counts);
        let a3 = ThreeMajority.alpha(&c);
        let av = Voter.alpha(&c);
        prop_assert!(symbreak_majorization::vector::majorizes_eps(&a3, &av, 1e-9));
    }

    #[test]
    fn rational_field_laws(
        an in -50i128..50, ad in 1i128..20,
        bn in -50i128..50, bd in 1i128..20,
        cn in -50i128..50, cd in 1i128..20,
    ) {
        let a = Rational::new(an, ad);
        let b = Rational::new(bn, bd);
        let c = Rational::new(cn, cd);
        prop_assert_eq!(a + b, b + a);
        prop_assert_eq!(a * b, b * a);
        prop_assert_eq!((a + b) + c, a + (b + c));
        prop_assert_eq!(a * (b + c), a * b + a * c);
        prop_assert_eq!(a - a, Rational::ZERO);
        if !b.is_zero() {
            prop_assert_eq!((a / b) * b, a);
        }
    }

    #[test]
    fn exact_and_float_h_majority_agree(
        counts in proptest::collection::vec(0u64..8, 4)
            .prop_filter("non-empty", |c| c.iter().sum::<u64>() > 0),
        h in 1usize..5,
    ) {
        let total: u64 = counts.iter().sum();
        let c = Configuration::from_counts(counts.clone());
        let float = HMajority::new(h).alpha(&c);
        let x: Vec<Rational> =
            counts.iter().map(|&v| Rational::new(v as i128, total as i128)).collect();
        let exact = alpha_h_majority_exact(&x, h);
        for (f, e) in float.iter().zip(&exact) {
            prop_assert!((f - e.to_f64()).abs() < 1e-9);
        }
    }

    #[test]
    fn rational_majorization_matches_float(
        a in proptest::collection::vec(0i128..20, 4),
        b in proptest::collection::vec(0i128..20, 4),
    ) {
        // Compare raw integer vectors (denominator 1): both sides agree on
        // the relation whether or not the totals match (unequal totals are
        // incomparable in both implementations).
        let ra: Vec<Rational> = a.iter().map(|&v| Rational::new(v, 1)).collect();
        let rb: Vec<Rational> = b.iter().map(|&v| Rational::new(v, 1)).collect();
        let fa: Vec<f64> = a.iter().map(|&v| v as f64).collect();
        let fb: Vec<f64> = b.iter().map(|&v| v as f64).collect();
        prop_assert_eq!(
            rational_majorizes(&ra, &rb),
            symbreak_majorization::vector::majorizes_eps(&fa, &fb, 1e-9)
        );
    }

    #[test]
    fn compaction_never_changes_consensus_status(counts in counts_strategy(6, 30)) {
        let c = Configuration::from_counts(counts);
        prop_assert_eq!(c.is_consensus(), c.compacted().is_consensus());
        prop_assert_eq!(c.bias(), c.compacted().bias());
        prop_assert_eq!(c.max_support(), c.compacted().max_support());
    }
}
