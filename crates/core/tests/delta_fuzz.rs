//! Delta-report fuzz: drives a coordinator-style merged
//! [`Configuration`] through randomly interleaved Sparse / Delta / Dense
//! report rounds against a from-scratch per-shard model, and asserts the
//! merged configuration always equals a full recount — mass conserved,
//! dead colors stay dead, caches consistent.
//!
//! This is the property the cluster's adaptive delta control plane
//! leans on: the coordinator may command a different report format every
//! round (absolute sparse via `merge_sparse`, signed deltas via
//! `apply_deltas`, dense rebuilds via `from_counts`) and the single
//! persistent merged configuration must stay exact across any switch
//! sequence.

use proptest::prelude::*;
use symbreak_core::Configuration;

/// One simulated mutation of the per-shard local counts. Fields are raw
/// fuzz bytes, reduced modulo the model's dimensions on application.
#[derive(Debug, Clone, Copy)]
struct Op {
    kind: u8,
    shard: u8,
    src: u8,
    dst: u8,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    (0u8..=255, 0u8..=255, 0u8..=255, 0u8..=255).prop_map(|(kind, shard, src, dst)| Op {
        kind,
        shard,
        src,
        dst,
    })
}

/// Applies one op to the per-shard locals, respecting the invariant the
/// real processes guarantee: mass may only arrive on slots that were
/// globally occupied at the round start (`live`), because a dead color
/// cannot be sampled. Ops that would violate it are skipped.
fn apply_op(locals: &mut [Vec<u64>], live: &[bool], op: Op) {
    let shards = locals.len();
    let k = locals[0].len();
    let s = op.shard as usize % shards;
    let src = op.src as usize % k;
    let dst = op.dst as usize % k;
    match op.kind % 3 {
        // Move one unit src -> dst within a shard.
        0 => {
            if locals[s][src] > 0 && live[dst] {
                locals[s][src] -= 1;
                locals[s][dst] += 1;
            }
        }
        // One unit leaves the decided pool (undecided dynamics).
        1 => {
            if locals[s][src] > 0 {
                locals[s][src] -= 1;
            }
        }
        // One undecided node adopts a live opinion (mass returns).
        _ => {
            if live[dst] {
                locals[s][dst] += 1;
            }
        }
    }
}

fn global_counts(locals: &[Vec<u64>], k: usize) -> Vec<u64> {
    let mut g = vec![0u64; k];
    for local in locals {
        for (gi, &c) in g.iter_mut().zip(local) {
            *gi += c;
        }
    }
    g
}

/// Every observable of `merged` must match a from-scratch rebuild.
fn assert_matches_recount(merged: &Configuration, global: &[u64]) {
    let fresh = Configuration::from_counts(global.to_vec());
    assert_eq!(merged, &fresh, "merged counts drifted from the recount");
    assert_eq!(merged.n(), fresh.n(), "population drifted");
    assert_eq!(merged.occupied(), fresh.occupied(), "occupancy list drifted");
    assert_eq!(merged.num_colors(), fresh.num_colors());
    assert_eq!(merged.max_support(), fresh.max_support());
    assert_eq!(merged.bias(), fresh.bias());
    assert!((merged.l2_norm_sq() - fresh.l2_norm_sq()).abs() < 1e-12 || merged.n() == 0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn interleaved_report_formats_stay_exact(
        initial in proptest::collection::vec(
            proptest::collection::vec(0u64..5, 2..9),
            1..4,
        ),
        rounds in proptest::collection::vec(
            (0u8..3, proptest::collection::vec(op_strategy(), 0..12)),
            1..8,
        ),
    ) {
        // Normalize the ragged fuzz input: every shard sees k slots.
        let k = initial.iter().map(|l| l.len()).min().unwrap();
        let mut locals: Vec<Vec<u64>> =
            initial.iter().map(|l| l[..k].to_vec()).collect();

        let global = global_counts(&locals, k);
        let mut merged = Configuration::from_counts(global.clone());
        assert_matches_recount(&merged, &global);

        for (format, ops) in rounds {
            // Round start: what is alive now is what may gain mass.
            let live: Vec<bool> = global_counts(&locals, k).iter().map(|&c| c > 0).collect();
            let prev_locals = locals.clone();
            for op in ops {
                apply_op(&mut locals, &live, op);
            }

            match format {
                // Absolute sparse reports -> merge_sparse.
                0 => {
                    let parts: Vec<Vec<(u32, u64)>> = locals
                        .iter()
                        .map(|local| {
                            local
                                .iter()
                                .enumerate()
                                .filter(|&(_, &c)| c > 0)
                                .map(|(i, &c)| (i as u32, c))
                                .collect()
                        })
                        .collect();
                    merged.merge_sparse(parts.iter().map(|p| p.as_slice()));
                }
                // Signed delta reports -> apply_deltas.
                1 => {
                    let parts: Vec<Vec<(u32, i64)>> = locals
                        .iter()
                        .zip(&prev_locals)
                        .map(|(new, old)| {
                            new.iter()
                                .zip(old)
                                .enumerate()
                                .filter(|&(_, (&n, &o))| n != o)
                                .map(|(i, (&n, &o))| (i as u32, n as i64 - o as i64))
                                .collect()
                        })
                        .collect();
                    merged.apply_deltas(parts.iter().map(|p| p.as_slice()));
                }
                // Dense reports -> full rebuild (the pre-sparse path).
                _ => {
                    merged = Configuration::from_counts(global_counts(&locals, k));
                }
            }

            let global = global_counts(&locals, k);
            assert_matches_recount(&merged, &global);
        }
    }
}
