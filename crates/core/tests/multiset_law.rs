//! The exchangeability pin for the sample-consumption taxonomy: for
//! every [`MultisetRule`], `update_from_counts` over a window's
//! histogram must agree **in law** with `update` over the window itself
//! — and, since a multiset consumer cannot read order, with `update`
//! over any permutation of the window. Deterministic windows (a unique
//! plurality, a doubled median sample, …) are pinned exactly; windows
//! that engage internal randomness (tie-breaks) are pinned by frequency
//! comparison.
//!
//! Plus the [`SampleAccess`] contract checks: the `Multiset` ⇔
//! `as_multiset` pairing for every rule, and Voter's `SinglePeer`
//! guarantee `update(own, [s], _) == s`.

use std::collections::HashMap;

use proptest::prelude::*;
use rand::SeedableRng;
use symbreak_core::rules::{
    HMajority, LazyVoter, ThreeMajority, ThreeMajorityAlt, TwoChoices, TwoMedian,
    UndecidedDynamics, Voter,
};
use symbreak_core::{MultisetRule, Opinion, SampleAccess, UpdateRule};
use symbreak_sim::rng::Pcg64;

fn op(i: u32) -> Opinion {
    Opinion::new(i)
}

/// Window histogram in first-appearance order.
fn histogram(window: &[Opinion]) -> Vec<(Opinion, u32)> {
    let mut counts: Vec<(Opinion, u32)> = Vec::new();
    for &s in window {
        match counts.iter_mut().find(|(o, _)| *o == s) {
            Some((_, c)) => *c += 1,
            None => counts.push((s, 1)),
        }
    }
    counts
}

/// Empirical outcome distribution of `f` over `trials` independent RNG
/// streams.
fn outcome_law(
    trials: u64,
    seed: u64,
    mut f: impl FnMut(&mut Pcg64) -> Opinion,
) -> HashMap<Opinion, u64> {
    let mut law = HashMap::new();
    for t in 0..trials {
        let mut rng = Pcg64::seed_from_u64(seed ^ (t.wrapping_mul(0x9E37_79B9_7F4A_7C15)));
        *law.entry(f(&mut rng)).or_insert(0u64) += 1;
    }
    law
}

/// Asserts two empirical outcome laws agree within a 5-sigma band per
/// outcome.
fn assert_laws_agree(
    name: &str,
    a: &HashMap<Opinion, u64>,
    b: &HashMap<Opinion, u64>,
    trials: u64,
) -> Result<(), TestCaseError> {
    let keys: std::collections::HashSet<_> = a.keys().chain(b.keys()).collect();
    for o in keys {
        let fa = *a.get(o).unwrap_or(&0) as f64 / trials as f64;
        let fb = *b.get(o).unwrap_or(&0) as f64 / trials as f64;
        let p = 0.5 * (fa + fb);
        let tol = 5.0 * (p * (1.0 - p) * 2.0 / trials as f64).sqrt() + 2.0 / trials as f64;
        prop_assert!((fa - fb).abs() < tol, "{name}: outcome {o} at {fa} vs {fb} (tol {tol})");
    }
    Ok(())
}

/// The core pin: ordered `update`, `update` on a rotated window, and
/// `update_from_counts` on the histogram must share one law.
fn check_rule_window(
    name: &str,
    rule: &dyn MultisetRule,
    own: Opinion,
    window: &[Opinion],
    seed: u64,
) -> Result<(), TestCaseError> {
    let counts = histogram(window);
    // Rotation gives a genuinely different ordering for mixed windows.
    let mut rotated = window.to_vec();
    rotated.rotate_left(1.min(window.len() - 1));

    // Probe for determinism: 24 streams each.
    let probe = 24u64;
    let po = outcome_law(probe, seed, |rng| rule.update(own, window, rng));
    let pc = outcome_law(probe, seed + 1, |rng| rule.update_from_counts(own, &counts, rng));
    if po.len() == 1 && pc.len() == 1 {
        prop_assert_eq!(
            po.keys().next(),
            pc.keys().next(),
            "{} deterministic outcome mismatch on {:?}",
            name,
            window
        );
        let pr = outcome_law(probe, seed + 2, |rng| rule.update(own, &rotated, rng));
        prop_assert_eq!(
            po.keys().next(),
            pr.keys().next(),
            "{} order-dependent outcome on {:?}",
            name,
            window
        );
        return Ok(());
    }

    let trials = 3_000u64;
    let ordered = outcome_law(trials, seed + 3, |rng| rule.update(own, window, rng));
    let rotated_law = outcome_law(trials, seed + 4, |rng| rule.update(own, &rotated, rng));
    let from_counts =
        outcome_law(trials, seed + 5, |rng| rule.update_from_counts(own, &counts, rng));
    assert_laws_agree(name, &ordered, &from_counts, trials)?;
    assert_laws_agree(name, &ordered, &rotated_law, trials)?;
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn three_majority_multiset_agrees_in_law(
        window in proptest::collection::vec(0u32..5, 3),
        own in 0u32..5,
        seed in 0u64..1_000_000,
    ) {
        let window: Vec<Opinion> = window.into_iter().map(op).collect();
        check_rule_window("3-Majority", &ThreeMajority, op(own), &window, seed)?;
    }

    #[test]
    fn h_majority_multiset_agrees_in_law(
        h in 1usize..6,
        raw in proptest::collection::vec(0u32..4, 6),
        own in 0u32..4,
        seed in 0u64..1_000_000,
    ) {
        let window: Vec<Opinion> = raw[..h].iter().map(|&i| op(i)).collect();
        check_rule_window("h-Majority", &HMajority::new(h), op(own), &window, seed)?;
    }

    #[test]
    fn two_median_multiset_agrees_in_law(
        window in proptest::collection::vec(0u32..6, 2),
        own in 0u32..6,
        seed in 0u64..1_000_000,
    ) {
        let window: Vec<Opinion> = window.into_iter().map(op).collect();
        check_rule_window("2-Median", &TwoMedian, op(own), &window, seed)?;
    }

    #[test]
    fn undecided_multiset_agrees_in_law(
        sample in 0u32..4,
        sample_undecided in 0u32..2,
        own in 0u32..4,
        own_undecided in 0u32..2,
        seed in 0u64..1_000_000,
    ) {
        let decode = |i: u32, u: u32| if u == 1 { Opinion::UNDECIDED } else { op(i) };
        let window = [decode(sample, sample_undecided)];
        check_rule_window(
            "Undecided-State",
            &UndecidedDynamics,
            decode(own, own_undecided),
            &window,
            seed,
        )?;
    }
}

#[test]
fn taxonomy_pairing_is_consistent_for_every_rule() {
    // Multiset access and a MultisetRule impl must come in pairs, and
    // the Box<dyn UpdateRule> blanket must forward both.
    let rules: Vec<(Box<dyn UpdateRule>, SampleAccess)> = vec![
        (Box::new(Voter), SampleAccess::SinglePeer),
        (Box::new(TwoChoices), SampleAccess::OrderedWindow),
        (Box::new(ThreeMajority), SampleAccess::Multiset),
        (Box::new(ThreeMajorityAlt), SampleAccess::OrderedWindow),
        (Box::new(HMajority::new(5)), SampleAccess::Multiset),
        (Box::new(LazyVoter::half()), SampleAccess::OrderedWindow),
        (Box::new(TwoMedian), SampleAccess::Multiset),
        (Box::new(UndecidedDynamics), SampleAccess::Multiset),
    ];
    for (rule, expected) in rules {
        assert_eq!(rule.sample_access(), expected, "{}", rule.name());
        assert_eq!(
            rule.as_multiset().is_some(),
            expected == SampleAccess::Multiset,
            "{}: Multiset access and as_multiset() must pair up",
            rule.name()
        );
        if expected == SampleAccess::SinglePeer {
            assert_eq!(rule.sample_count(), 1, "{}: single peer means one sample", rule.name());
        }
    }
}

#[test]
fn voter_single_peer_contract_holds() {
    // SinglePeer guarantees update(own, [s], _) == s for every own, s —
    // the basis for skipping sample materialization on the wire.
    let mut rng = Pcg64::seed_from_u64(9);
    for own in 0..8u32 {
        for s in 0..8u32 {
            assert_eq!(Voter.update(op(own), &[op(s)], &mut rng), op(s));
        }
        assert_eq!(Voter.update(Opinion::UNDECIDED, &[op(own)], &mut rng), op(own));
    }
}
