//! Adversary strategies.
//!
//! The interesting adversaries for consensus *delay* are the
//! symmetry-preserving ones: [`MinoritySupporter`] pulls mass back to the
//! weakest colors (fighting the drift that kills colors), and
//! [`SplitKeeper`] re-balances the top two colors (fighting the
//! symmetry-breaking the protocols rely on). [`RandomFlipper`] models
//! unstructured faults and barely matters — exactly the contrast
//! Experiment E12 shows.

use rand::{Rng, RngCore};

use symbreak_core::Configuration;

use crate::Adversary;

/// The no-op adversary (baseline).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Nop;

impl Adversary for Nop {
    fn name(&self) -> &'static str {
        "Nop"
    }

    fn budget(&self) -> u64 {
        0
    }

    fn corrupt(&mut self, _config: &mut Configuration, _rng: &mut dyn RngCore) {}
}

/// Moves up to `f` uniformly random nodes to uniformly random colors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RandomFlipper {
    f: u64,
}

impl RandomFlipper {
    /// Creates a flipper with per-round budget `f`.
    pub fn new(f: u64) -> Self {
        Self { f }
    }
}

impl Adversary for RandomFlipper {
    fn name(&self) -> &'static str {
        "RandomFlipper"
    }

    fn budget(&self) -> u64 {
        self.f
    }

    fn corrupt(&mut self, config: &mut Configuration, rng: &mut dyn RngCore) {
        let k = config.num_slots();
        let n = config.n();
        // One guard for the whole budget: its cache refresh on drop is
        // O(k), so it must not sit inside the per-unit loop.
        let mut counts = config.counts_mut();
        for _ in 0..self.f.min(n) {
            // Pick a random *node* (weighted by support) and move it to a
            // random slot.
            let mut pick = rng.gen_range(0..n);
            let mut from = 0;
            for (i, &c) in counts.iter().enumerate() {
                if pick < c {
                    from = i;
                    break;
                }
                pick -= c;
            }
            let to = rng.gen_range(0..k);
            counts[from] -= 1;
            counts[to] += 1;
        }
        drop(counts);
        config.validate();
    }
}

/// Moves nodes from the strongest color to the weakest *valid* colors
/// (including reviving dead ones if slots allow), preserving symmetry.
///
/// This is the canonical delay strategy: it directly counteracts the
/// drift both 2-Choices and 3-Majority rely on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MinoritySupporter {
    f: u64,
    /// Only colors `< revive_limit` are eligible to receive support,
    /// modelling the "valid colors" restriction.
    revive_limit: usize,
}

impl MinoritySupporter {
    /// Creates a supporter with per-round budget `f` that may boost any of
    /// the first `revive_limit` color slots.
    pub fn new(f: u64, revive_limit: usize) -> Self {
        assert!(revive_limit >= 2, "need at least two eligible colors");
        Self { f, revive_limit }
    }
}

impl Adversary for MinoritySupporter {
    fn name(&self) -> &'static str {
        "MinoritySupporter"
    }

    fn budget(&self) -> u64 {
        self.f
    }

    fn corrupt(&mut self, config: &mut Configuration, _rng: &mut dyn RngCore) {
        let limit = self.revive_limit.min(config.num_slots());
        // One guard for the whole budget: its cache refresh on drop is
        // O(k), so it must not sit inside the per-unit loop.
        let mut counts = config.counts_mut();
        for _ in 0..self.f {
            // Strongest donor overall; weakest recipient among eligible.
            let (from, &fmax) =
                counts.iter().enumerate().max_by_key(|&(_, &c)| c).expect("non-empty");
            let (to, &tmin) =
                counts[..limit].iter().enumerate().min_by_key(|&(_, &c)| c).expect("non-empty");
            if from == to || fmax == 0 || fmax <= tmin + 1 {
                break; // already balanced; stop spending budget
            }
            counts[from] -= 1;
            counts[to] += 1;
        }
        drop(counts);
        config.validate();
    }
}

/// Keeps the two largest colors in a stalemate by restoring balance
/// between them (up to the budget).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitKeeper {
    f: u64,
}

impl SplitKeeper {
    /// Creates a split-keeper with per-round budget `f`.
    pub fn new(f: u64) -> Self {
        Self { f }
    }
}

impl Adversary for SplitKeeper {
    fn name(&self) -> &'static str {
        "SplitKeeper"
    }

    fn budget(&self) -> u64 {
        self.f
    }

    fn corrupt(&mut self, config: &mut Configuration, _rng: &mut dyn RngCore) {
        // Identify the top-two slots.
        let mut counts = config.counts_mut();
        if counts.len() < 2 {
            return;
        }
        let mut first = 0usize;
        let mut second = 1usize;
        if counts[second] > counts[first] {
            std::mem::swap(&mut first, &mut second);
        }
        for (i, &c) in counts.iter().enumerate().skip(2) {
            if c > counts[first] {
                second = first;
                first = i;
            } else if c > counts[second] {
                second = i;
            }
        }
        // Move up to f nodes from the leader to the runner-up, halving the
        // gap (never overshooting).
        let gap = counts[first] - counts[second];
        let transfer = (gap / 2).min(self.f);
        counts[first] -= transfer;
        counts[second] += transfer;
        drop(counts); // release the guard so the caches refresh
        config.validate();
    }
}

/// Moves nodes from the weakest surviving color to the strongest —
/// an "adversary" that *accelerates* consensus. Included as the control
/// contrast in the fault-tolerance experiments: the corruption budget can
/// cut both ways, and Byzantine *validity* (not speed) is what a helper
/// cannot violate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Eraser {
    f: u64,
}

impl Eraser {
    /// Creates an eraser with per-round budget `f`.
    pub fn new(f: u64) -> Self {
        Self { f }
    }
}

impl Adversary for Eraser {
    fn name(&self) -> &'static str {
        "Eraser"
    }

    fn budget(&self) -> u64 {
        self.f
    }

    fn corrupt(&mut self, config: &mut Configuration, _rng: &mut dyn RngCore) {
        // One guard for the whole budget: its cache refresh on drop is
        // O(k), so it must not sit inside the per-unit loop.
        let mut counts = config.counts_mut();
        for _ in 0..self.f {
            let Some((to, _)) = counts.iter().enumerate().max_by_key(|&(_, &c)| c) else {
                break;
            };
            let Some((from, &fmin)) = counts
                .iter()
                .enumerate()
                .filter(|&(i, &c)| c > 0 && i != to)
                .min_by_key(|&(_, &c)| c)
            else {
                break; // already consensus
            };
            if fmin == 0 {
                break;
            }
            counts[from] -= 1;
            counts[to] += 1;
        }
        drop(counts);
        config.validate();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corruption_within_budget;
    use rand::SeedableRng;
    use symbreak_sim::rng::Pcg64;

    #[test]
    fn nop_changes_nothing() {
        let mut c = Configuration::uniform(100, 4);
        let before = c.clone();
        let mut rng = Pcg64::seed_from_u64(1);
        Nop.corrupt(&mut c, &mut rng);
        assert_eq!(c, before);
        assert_eq!(Nop.budget(), 0);
    }

    #[test]
    fn random_flipper_respects_budget_and_mass() {
        let mut rng = Pcg64::seed_from_u64(2);
        for f in [0u64, 1, 5, 50] {
            let mut c = Configuration::uniform(100, 4);
            let before = c.clone();
            RandomFlipper::new(f).corrupt(&mut c, &mut rng);
            assert!(corruption_within_budget(&before, &c, f), "f={f}");
            assert_eq!(c.n(), 100);
        }
    }

    #[test]
    fn minority_supporter_reduces_bias() {
        let mut c = Configuration::from_counts(vec![80, 10, 10]);
        let mut rng = Pcg64::seed_from_u64(3);
        let before = c.clone();
        MinoritySupporter::new(5, 3).corrupt(&mut c, &mut rng);
        assert!(c.bias() < before.bias());
        assert!(corruption_within_budget(&before, &c, 5));
    }

    #[test]
    fn minority_supporter_revives_dead_colors() {
        let mut c = Configuration::from_counts(vec![99, 1, 0]);
        let mut rng = Pcg64::seed_from_u64(4);
        MinoritySupporter::new(2, 3).corrupt(&mut c, &mut rng);
        assert!(c.support(2) > 0, "dead color should be revived: {c:?}");
    }

    #[test]
    fn minority_supporter_stops_when_balanced() {
        let mut c = Configuration::from_counts(vec![5, 5, 5]);
        let before = c.clone();
        let mut rng = Pcg64::seed_from_u64(5);
        MinoritySupporter::new(100, 3).corrupt(&mut c, &mut rng);
        assert_eq!(c, before, "balanced config should not change");
    }

    #[test]
    fn split_keeper_halves_the_gap() {
        let mut c = Configuration::from_counts(vec![70, 20, 10]);
        let mut rng = Pcg64::seed_from_u64(6);
        SplitKeeper::new(100).corrupt(&mut c, &mut rng);
        assert_eq!(c.counts(), &[45, 45, 10]);
    }

    #[test]
    fn split_keeper_respects_budget() {
        let mut c = Configuration::from_counts(vec![70, 20, 10]);
        let before = c.clone();
        let mut rng = Pcg64::seed_from_u64(7);
        SplitKeeper::new(3).corrupt(&mut c, &mut rng);
        assert!(corruption_within_budget(&before, &c, 3));
        assert_eq!(c.counts(), &[67, 23, 10]);
    }

    #[test]
    fn split_keeper_finds_top_two_beyond_first_slots() {
        let mut c = Configuration::from_counts(vec![5, 10, 60, 30]);
        let mut rng = Pcg64::seed_from_u64(8);
        SplitKeeper::new(100).corrupt(&mut c, &mut rng);
        assert_eq!(c.counts(), &[5, 10, 45, 45]);
    }

    #[test]
    fn eraser_kills_the_weakest_color() {
        let mut c = Configuration::from_counts(vec![80, 17, 3]);
        let mut rng = Pcg64::seed_from_u64(9);
        Eraser::new(3).corrupt(&mut c, &mut rng);
        assert_eq!(c.counts(), &[83, 17, 0]);
        assert!(corruption_within_budget(&Configuration::from_counts(vec![80, 17, 3]), &c, 3));
    }

    #[test]
    fn eraser_is_idle_at_consensus() {
        let mut c = Configuration::consensus(50, 3);
        let before = c.clone();
        let mut rng = Pcg64::seed_from_u64(10);
        Eraser::new(10).corrupt(&mut c, &mut rng);
        assert_eq!(c, before);
    }

    #[test]
    fn eraser_accelerates_consensus() {
        use crate::runner::{run_adversarial, AdversarialRun};
        use symbreak_core::rules::ThreeMajority;
        let start = Configuration::uniform(512, 8);
        let opts = AdversarialRun { max_rounds: 100_000, quorum_fraction: 1.0, seed: 11 };
        let clean = run_adversarial(&ThreeMajority, &mut Nop, start.clone(), &opts)
            .stabilized_round
            .expect("clean run converges");
        let helped = run_adversarial(&ThreeMajority, &mut Eraser::new(8), start, &opts)
            .stabilized_round
            .expect("helped run converges");
        assert!(helped <= clean, "eraser should not slow things down: {helped} vs {clean}");
    }
}
