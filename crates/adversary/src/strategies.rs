//! Adversary strategies.
//!
//! The interesting adversaries for consensus *delay* are the
//! symmetry-preserving ones: [`MinoritySupporter`] pulls mass back to the
//! weakest colors (fighting the drift that kills colors), and
//! [`SplitKeeper`] re-balances the top two colors (fighting the
//! symmetry-breaking the protocols rely on). [`RandomFlipper`] models
//! unstructured faults and barely matters — exactly the contrast
//! Experiment E12 shows.
//!
//! Every corrupt path is **occupancy-aware**: donors/recipients are
//! found by scanning the occupied-slot list (never the dense counts)
//! and mass moves through [`Configuration::shift_support`], which keeps
//! the caches exact in `O(#occupied)` — no `counts_mut` guard with its
//! `O(k)` rebuild-on-drop. Adversarial sweeps from `k = n` singleton
//! starts therefore scale with the surviving support like the clean
//! runs do (pinned by `corruption_cost_tracks_occupancy_not_slots`).
//! The only remaining dense scans are parameter-sized: a recipient
//! search over `revive_limit` eligible slots, and [`RandomFlipper`]'s
//! uniform target slot (an `O(1)` draw, since dead targets are
//! revivable by design).

use rand::{Rng, RngCore};

use symbreak_core::Configuration;

use crate::Adversary;

/// The no-op adversary (baseline).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Nop;

impl Adversary for Nop {
    fn name(&self) -> &'static str {
        "Nop"
    }

    fn budget(&self) -> u64 {
        0
    }

    fn corrupt(&mut self, _config: &mut Configuration, _rng: &mut dyn RngCore) {}
}

/// Moves up to `f` uniformly random nodes to uniformly random colors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RandomFlipper {
    f: u64,
}

impl RandomFlipper {
    /// Creates a flipper with per-round budget `f`.
    pub fn new(f: u64) -> Self {
        Self { f }
    }
}

impl Adversary for RandomFlipper {
    fn name(&self) -> &'static str {
        "RandomFlipper"
    }

    fn budget(&self) -> u64 {
        self.f
    }

    fn corrupt(&mut self, config: &mut Configuration, rng: &mut dyn RngCore) {
        let k = config.num_slots();
        let n = config.n();
        for _ in 0..self.f.min(n) {
            // Pick a random *node* (weighted by support) by walking the
            // occupied slots' counts, and move it to a uniform slot
            // (possibly dead — flips revive colors).
            let mut pick = rng.gen_range(0..n);
            let mut from = 0usize;
            for (&i, c) in config.occupied().iter().zip(config.occupied_counts()) {
                if pick < c {
                    from = i as usize;
                    break;
                }
                pick -= c;
            }
            let to = rng.gen_range(0..k);
            config.shift_support(Some(from), Some(to), 1);
        }
    }
}

/// Moves nodes from the strongest color to the weakest *valid* colors
/// (including reviving dead ones if slots allow), preserving symmetry.
///
/// This is the canonical delay strategy: it directly counteracts the
/// drift both 2-Choices and 3-Majority rely on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MinoritySupporter {
    f: u64,
    /// Only colors `< revive_limit` are eligible to receive support,
    /// modelling the "valid colors" restriction.
    revive_limit: usize,
}

impl MinoritySupporter {
    /// Creates a supporter with per-round budget `f` that may boost any of
    /// the first `revive_limit` color slots.
    pub fn new(f: u64, revive_limit: usize) -> Self {
        assert!(revive_limit >= 2, "need at least two eligible colors");
        Self { f, revive_limit }
    }
}

impl Adversary for MinoritySupporter {
    fn name(&self) -> &'static str {
        "MinoritySupporter"
    }

    fn budget(&self) -> u64 {
        self.f
    }

    fn corrupt(&mut self, config: &mut Configuration, _rng: &mut dyn RngCore) {
        let limit = self.revive_limit.min(config.num_slots());
        for _ in 0..self.f {
            // Strongest donor overall: a scan of the occupied slots
            // (dense-scan parity: the last maximum in slot order).
            let mut from = usize::MAX;
            let mut fmax = 0u64;
            for (&i, c) in config.occupied().iter().zip(config.occupied_counts()) {
                if c >= fmax {
                    fmax = c;
                    from = i as usize;
                }
            }
            // Weakest recipient among the eligible slots (first minimum,
            // dead slots revivable): O(limit), parameter-sized.
            let mut to = 0usize;
            let mut tmin = u64::MAX;
            for (i, c) in (0..limit).map(|i| (i, config.support(i))) {
                if c < tmin {
                    tmin = c;
                    to = i;
                }
            }
            if from == to || fmax == 0 || fmax <= tmin + 1 {
                break; // already balanced; stop spending budget
            }
            config.shift_support(Some(from), Some(to), 1);
        }
    }
}

/// Keeps the two largest colors in a stalemate by restoring balance
/// between them (up to the budget).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitKeeper {
    f: u64,
}

impl SplitKeeper {
    /// Creates a split-keeper with per-round budget `f`.
    pub fn new(f: u64) -> Self {
        Self { f }
    }
}

impl Adversary for SplitKeeper {
    fn name(&self) -> &'static str {
        "SplitKeeper"
    }

    fn budget(&self) -> u64 {
        self.f
    }

    fn corrupt(&mut self, config: &mut Configuration, _rng: &mut dyn RngCore) {
        if config.num_slots() < 2 {
            return;
        }
        // Identify the top-two slots from the occupied list (dense-scan
        // parity: first strict maximum; at consensus the runner-up falls
        // back to the lowest dead slot, which the transfer revives —
        // that is the strategy's point).
        let occ = config.occupied();
        let (first, second) = match *occ {
            [] => return, // empty configuration: nothing to split
            [only] => {
                let only = only as usize;
                (only, usize::from(only == 0))
            }
            [a, b, ref rest @ ..] => {
                let mut first = a as usize;
                let mut second = b as usize;
                if config.support(second) > config.support(first) {
                    std::mem::swap(&mut first, &mut second);
                }
                for &i in rest {
                    let i = i as usize;
                    let c = config.support(i);
                    if c > config.support(first) {
                        second = first;
                        first = i;
                    } else if c > config.support(second) {
                        second = i;
                    }
                }
                (first, second)
            }
        };
        // Move up to f nodes from the leader to the runner-up, halving the
        // gap (never overshooting).
        let gap = config.support(first) - config.support(second);
        let transfer = (gap / 2).min(self.f);
        config.shift_support(Some(first), Some(second), transfer);
    }
}

/// Moves nodes from the weakest surviving color to the strongest —
/// an "adversary" that *accelerates* consensus. Included as the control
/// contrast in the fault-tolerance experiments: the corruption budget can
/// cut both ways, and Byzantine *validity* (not speed) is what a helper
/// cannot violate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Eraser {
    f: u64,
}

impl Eraser {
    /// Creates an eraser with per-round budget `f`.
    pub fn new(f: u64) -> Self {
        Self { f }
    }
}

impl Adversary for Eraser {
    fn name(&self) -> &'static str {
        "Eraser"
    }

    fn budget(&self) -> u64 {
        self.f
    }

    fn corrupt(&mut self, config: &mut Configuration, _rng: &mut dyn RngCore) {
        for _ in 0..self.f {
            if config.num_colors() < 2 {
                break; // already consensus (or empty)
            }
            // Strongest recipient (last maximum in slot order) and
            // weakest surviving donor (first minimum): one scan of the
            // occupied slots.
            let mut to = 0usize;
            let mut cmax = 0u64;
            for (&i, c) in config.occupied().iter().zip(config.occupied_counts()) {
                if c >= cmax {
                    cmax = c;
                    to = i as usize;
                }
            }
            let mut from = usize::MAX;
            let mut cmin = u64::MAX;
            for (&i, c) in config.occupied().iter().zip(config.occupied_counts()) {
                if (i as usize) != to && c < cmin {
                    cmin = c;
                    from = i as usize;
                }
            }
            config.shift_support(Some(from), Some(to), 1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corruption_within_budget;
    use rand::SeedableRng;
    use symbreak_sim::rng::Pcg64;

    #[test]
    fn nop_changes_nothing() {
        let mut c = Configuration::uniform(100, 4);
        let before = c.clone();
        let mut rng = Pcg64::seed_from_u64(1);
        Nop.corrupt(&mut c, &mut rng);
        assert_eq!(c, before);
        assert_eq!(Nop.budget(), 0);
    }

    #[test]
    fn random_flipper_respects_budget_and_mass() {
        let mut rng = Pcg64::seed_from_u64(2);
        for f in [0u64, 1, 5, 50] {
            let mut c = Configuration::uniform(100, 4);
            let before = c.clone();
            RandomFlipper::new(f).corrupt(&mut c, &mut rng);
            assert!(corruption_within_budget(&before, &c, f), "f={f}");
            assert_eq!(c.n(), 100);
        }
    }

    #[test]
    fn minority_supporter_reduces_bias() {
        let mut c = Configuration::from_counts(vec![80, 10, 10]);
        let mut rng = Pcg64::seed_from_u64(3);
        let before = c.clone();
        MinoritySupporter::new(5, 3).corrupt(&mut c, &mut rng);
        assert!(c.bias() < before.bias());
        assert!(corruption_within_budget(&before, &c, 5));
    }

    #[test]
    fn minority_supporter_revives_dead_colors() {
        let mut c = Configuration::from_counts(vec![99, 1, 0]);
        let mut rng = Pcg64::seed_from_u64(4);
        MinoritySupporter::new(2, 3).corrupt(&mut c, &mut rng);
        assert!(c.support(2) > 0, "dead color should be revived: {c:?}");
    }

    #[test]
    fn minority_supporter_stops_when_balanced() {
        let mut c = Configuration::from_counts(vec![5, 5, 5]);
        let before = c.clone();
        let mut rng = Pcg64::seed_from_u64(5);
        MinoritySupporter::new(100, 3).corrupt(&mut c, &mut rng);
        assert_eq!(c, before, "balanced config should not change");
    }

    #[test]
    fn split_keeper_halves_the_gap() {
        let mut c = Configuration::from_counts(vec![70, 20, 10]);
        let mut rng = Pcg64::seed_from_u64(6);
        SplitKeeper::new(100).corrupt(&mut c, &mut rng);
        assert_eq!(c.counts(), &[45, 45, 10]);
    }

    #[test]
    fn split_keeper_respects_budget() {
        let mut c = Configuration::from_counts(vec![70, 20, 10]);
        let before = c.clone();
        let mut rng = Pcg64::seed_from_u64(7);
        SplitKeeper::new(3).corrupt(&mut c, &mut rng);
        assert!(corruption_within_budget(&before, &c, 3));
        assert_eq!(c.counts(), &[67, 23, 10]);
    }

    #[test]
    fn split_keeper_finds_top_two_beyond_first_slots() {
        let mut c = Configuration::from_counts(vec![5, 10, 60, 30]);
        let mut rng = Pcg64::seed_from_u64(8);
        SplitKeeper::new(100).corrupt(&mut c, &mut rng);
        assert_eq!(c.counts(), &[5, 10, 45, 45]);
    }

    #[test]
    fn eraser_kills_the_weakest_color() {
        let mut c = Configuration::from_counts(vec![80, 17, 3]);
        let mut rng = Pcg64::seed_from_u64(9);
        Eraser::new(3).corrupt(&mut c, &mut rng);
        assert_eq!(c.counts(), &[83, 17, 0]);
        assert!(corruption_within_budget(&Configuration::from_counts(vec![80, 17, 3]), &c, 3));
    }

    #[test]
    fn eraser_is_idle_at_consensus() {
        let mut c = Configuration::consensus(50, 3);
        let before = c.clone();
        let mut rng = Pcg64::seed_from_u64(10);
        Eraser::new(10).corrupt(&mut c, &mut rng);
        assert_eq!(c, before);
    }

    #[test]
    fn corruption_cost_tracks_occupancy_not_slots() {
        // The no-dense-scan pin for the k = n singleton-start regime
        // once occupancy has collapsed: the same tiny occupancy must
        // cost about the same no matter how many dense slots k the
        // configuration drags along. The old corrupt paths scanned the
        // dense counts per corrupted unit and rebuilt caches through the
        // O(k) counts_mut guard — a ~16000x gap between these two k's —
        // so a 64x tolerance has orders of magnitude of noise margin
        // while still catching any dense scan.
        let budget = 64u64;
        let reps = 400;
        let run = |k: usize| {
            let mut counts = vec![0u64; k];
            counts[0] = 500;
            counts[k - 1] = 500;
            let mut c = Configuration::from_counts(counts);
            let mut rng = Pcg64::seed_from_u64(77);
            let start = std::time::Instant::now();
            for _ in 0..reps {
                MinoritySupporter::new(budget, 2).corrupt(&mut c, &mut rng);
                Eraser::new(budget).corrupt(&mut c, &mut rng);
                SplitKeeper::new(budget).corrupt(&mut c, &mut rng);
            }
            // Capture the clock before the O(k log k) sorted_counts()
            // below — only the corrupt calls are under test.
            let elapsed = start.elapsed();
            let survivors: Vec<u64> = c.sorted_counts().into_iter().filter(|&v| v > 0).collect();
            (elapsed, survivors)
        };
        // Warm up the allocator/caches, then time; take the best of two
        // runs each to shave scheduler noise on a busy box.
        let (small_a, small_state) = run(64);
        let (small_b, _) = run(64);
        let (big_a, big_state) = run(1 << 20);
        let (big_b, _) = run(1 << 20);
        // The strategies are deterministic and occupancy-driven, so the
        // two runs walk identical support structures.
        assert_eq!(small_state, big_state, "evolution must not depend on k");
        let small = small_a.min(small_b);
        let big = big_a.min(big_b);
        // 250 ms grace absorbs scheduler stalls on a contended 1-CPU
        // box; a dense scan would overshoot by seconds regardless.
        assert!(
            big < small * 64 + std::time::Duration::from_millis(250),
            "corrupt cost scaled with k: {small:?} at k=64 vs {big:?} at k=2^20"
        );
    }

    #[test]
    fn eraser_accelerates_consensus() {
        use crate::runner::{run_adversarial, AdversarialRun};
        use symbreak_core::rules::ThreeMajority;
        let start = Configuration::uniform(512, 8);
        let opts = AdversarialRun { max_rounds: 100_000, quorum_fraction: 1.0, seed: 11 };
        let clean = run_adversarial(&ThreeMajority, &mut Nop, start.clone(), &opts)
            .stabilized_round
            .expect("clean run converges");
        let helped = run_adversarial(&ThreeMajority, &mut Eraser::new(8), start, &opts)
            .stabilized_round
            .expect("helped run converges");
        assert!(helped <= clean, "eraser should not slow things down: {helped} vs {clean}");
    }
}
