#![warn(missing_docs)]
//! Round-wise Byzantine adversary for consensus dynamics (Section 5 of the
//! paper, following the model of \[BCN+14, BCN+16\]).
//!
//! After each protocol round, an adversary may rewrite the state of up to
//! `F` nodes. The quality question is whether the protocol still converges
//! to an "almost-all agree" regime on a **valid** color — one supported
//! initially by at least one non-corrupted node. The paper cites
//! \[BCN+16\]: for `k = o(n^{1/3})`, 3-Majority tolerates
//! `F = O(√n / (k^{5/2} log n))`.
//!
//! * [`Adversary`] — the corruption interface (budget `F` per round).
//! * [`strategies`] — [`Nop`], [`RandomFlipper`], [`MinoritySupporter`]
//!   (revives the weakest/dead colors: the symmetry-preserving worst case
//!   for consensus), [`SplitKeeper`] (enforces a stalemate between the top
//!   two colors).
//! * [`validity`] — valid-color tracking for Byzantine validity.
//! * [`runner`] — adversarial consensus runs with verdicts.

pub mod runner;
pub mod strategies;
pub mod validity;

use symbreak_core::Configuration;

/// A round-wise adversary: may move the support of at most `budget()`
/// nodes after each protocol round.
pub trait Adversary {
    /// Display name.
    fn name(&self) -> &'static str;

    /// Maximum number of nodes this adversary rewrites per round.
    fn budget(&self) -> u64;

    /// Corrupts `config` in place, moving at most [`Adversary::budget`]
    /// nodes' support between colors; total mass must be preserved.
    fn corrupt(&mut self, config: &mut Configuration, rng: &mut dyn rand::RngCore);
}

pub use runner::{run_adversarial, AdversarialOutcome, AdversarialRun};
pub use strategies::{Eraser, MinoritySupporter, Nop, RandomFlipper, SplitKeeper};
pub use validity::{quorum_threshold, ValidityTracker};

/// Checks that `after` differs from `before` by moving at most `budget`
/// nodes (half the L1 distance of the count vectors) and preserves mass.
pub fn corruption_within_budget(
    before: &Configuration,
    after: &Configuration,
    budget: u64,
) -> bool {
    if before.n() != after.n() || before.num_slots() != after.num_slots() {
        return false;
    }
    let moved: u64 =
        before.counts().iter().zip(after.counts()).map(|(&b, &a)| b.abs_diff(a)).sum::<u64>() / 2;
    moved <= budget
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_check_counts_moved_nodes() {
        let before = Configuration::from_counts(vec![5, 5, 0]);
        let after = Configuration::from_counts(vec![3, 5, 2]);
        assert!(corruption_within_budget(&before, &after, 2));
        assert!(!corruption_within_budget(&before, &after, 1));
    }

    #[test]
    fn budget_check_rejects_mass_change() {
        let before = Configuration::from_counts(vec![5, 5]);
        let after = Configuration::from_counts(vec![5, 6]);
        assert!(!corruption_within_budget(&before, &after, 10));
    }

    #[test]
    fn identical_configs_cost_zero() {
        let c = Configuration::uniform(10, 2);
        assert!(corruption_within_budget(&c, &c, 0));
    }
}
