//! Adversarial consensus runs: protocol round, then corruption, repeated.

use rand::SeedableRng;

use symbreak_core::{Configuration, VectorStep};
use symbreak_sim::rng::Pcg64;

use crate::validity::ValidityTracker;
use crate::Adversary;

/// Configuration of an adversarial run.
#[derive(Debug, Clone)]
pub struct AdversarialRun {
    /// Round cap.
    pub max_rounds: u64,
    /// A run "stabilizes" when at least this fraction of nodes supports one
    /// color (the paper's "almost-all" regime; plain consensus = 1.0).
    pub quorum_fraction: f64,
    /// RNG seed (protocol and adversary share one stream).
    pub seed: u64,
}

impl Default for AdversarialRun {
    fn default() -> Self {
        Self { max_rounds: 1_000_000, quorum_fraction: 0.9, seed: 0 }
    }
}

/// Outcome of an adversarial run.
#[derive(Debug, Clone)]
pub struct AdversarialOutcome {
    /// Round at which the quorum was first met, if ever.
    pub stabilized_round: Option<u64>,
    /// Whether the quorum color was valid (meaningful only when
    /// `stabilized_round.is_some()`).
    pub valid: bool,
    /// Final configuration.
    pub final_config: Configuration,
}

impl AdversarialOutcome {
    /// Whether the protocol both stabilized and did so on a valid color.
    pub fn byzantine_success(&self) -> bool {
        self.stabilized_round.is_some() && self.valid
    }
}

/// Runs `process` from `start` with `adversary` corrupting after every
/// round, until the quorum is met or the cap elapses.
pub fn run_adversarial<P: VectorStep>(
    process: &P,
    adversary: &mut dyn Adversary,
    start: Configuration,
    opts: &AdversarialRun,
) -> AdversarialOutcome {
    let tracker = ValidityTracker::from_initial(&start);
    let mut rng = Pcg64::seed_from_u64(opts.seed);
    let mut config = start;
    let mut round = 0u64;
    loop {
        if tracker.almost_all_valid(&config, opts.quorum_fraction)
            || quorum_met(&config, opts.quorum_fraction)
        {
            let valid = tracker.is_valid(config.plurality());
            return AdversarialOutcome {
                stabilized_round: Some(round),
                valid,
                final_config: config,
            };
        }
        if round >= opts.max_rounds {
            let valid = tracker.is_valid(config.plurality());
            return AdversarialOutcome { stabilized_round: None, valid, final_config: config };
        }
        config = process.vector_step(&config, &mut rng);
        adversary.corrupt(&mut config, &mut rng);
        round += 1;
    }
}

fn quorum_met(config: &Configuration, fraction: f64) -> bool {
    // Integer-exact: the float product `n·fraction` is snapped to the
    // nearest integer (relative tolerance) before the ceiling, so
    // non-representable fractions (0.55 = 55.000000000000007/100) don't
    // shift the threshold by one node.
    config.max_support() >= crate::validity::quorum_threshold(config.n(), fraction)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategies::{MinoritySupporter, Nop, RandomFlipper, SplitKeeper};
    use symbreak_core::rules::ThreeMajority;

    #[test]
    fn quorum_threshold_is_not_shifted_by_float_error() {
        // Regression: `(100.0 * 0.55).ceil() = 56` because the product is
        // 55.000000000000007 in f64 — the old implementation demanded
        // 56/100 nodes for a 0.55 quorum. The threshold must be 55.
        let at_quorum = Configuration::from_counts(vec![55, 45]);
        assert!(quorum_met(&at_quorum, 0.55), "55/100 meets a 0.55 quorum");
        let below = Configuration::from_counts(vec![54, 46]);
        assert!(!quorum_met(&below, 0.55), "54/100 misses a 0.55 quorum");
        // Exact-product fractions keep their usual ceiling behaviour.
        assert!(quorum_met(&Configuration::from_counts(vec![9, 1]), 0.9));
        assert!(!quorum_met(&Configuration::from_counts(vec![8, 2]), 0.9));
        assert!(quorum_met(&Configuration::from_counts(vec![10]), 1.0));
    }

    #[test]
    fn nop_adversary_lets_protocol_converge() {
        let start = Configuration::uniform(512, 8);
        let out = run_adversarial(
            &ThreeMajority,
            &mut Nop,
            start,
            &AdversarialRun { max_rounds: 100_000, quorum_fraction: 1.0, seed: 1 },
        );
        assert!(out.byzantine_success(), "unhindered run must succeed");
    }

    #[test]
    fn small_random_corruption_is_tolerated() {
        let start = Configuration::uniform(1024, 4);
        let out = run_adversarial(
            &ThreeMajority,
            &mut RandomFlipper::new(2),
            start,
            &AdversarialRun { max_rounds: 100_000, quorum_fraction: 0.9, seed: 2 },
        );
        assert!(out.byzantine_success(), "F=2 random faults must be tolerated");
    }

    #[test]
    fn winner_is_a_valid_color_under_small_corruption() {
        let start = Configuration::uniform(512, 4);
        let out = run_adversarial(
            &ThreeMajority,
            &mut MinoritySupporter::new(1, 4),
            start,
            &AdversarialRun { max_rounds: 100_000, quorum_fraction: 0.9, seed: 3 },
        );
        assert!(out.byzantine_success());
    }

    #[test]
    fn massive_split_keeper_stalls_consensus() {
        // With budget Θ(n), the SplitKeeper pins the top two colors
        // together forever.
        let start = Configuration::uniform(256, 2);
        let out = run_adversarial(
            &ThreeMajority,
            &mut SplitKeeper::new(256),
            start,
            &AdversarialRun { max_rounds: 2_000, quorum_fraction: 0.9, seed: 4 },
        );
        assert!(out.stabilized_round.is_none(), "protocol should be stalled");
    }

    #[test]
    fn outcome_reports_final_config_mass() {
        let start = Configuration::uniform(128, 4);
        let out = run_adversarial(
            &ThreeMajority,
            &mut Nop,
            start,
            &AdversarialRun { max_rounds: 10, quorum_fraction: 1.0, seed: 5 },
        );
        assert_eq!(out.final_config.n(), 128);
    }
}
