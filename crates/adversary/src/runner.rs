//! Adversarial consensus runs: protocol round, then corruption, repeated.

use rand::SeedableRng;

use symbreak_core::{Configuration, VectorStep};
use symbreak_sim::rng::Pcg64;

use crate::validity::ValidityTracker;
use crate::Adversary;

/// Configuration of an adversarial run.
#[derive(Debug, Clone)]
pub struct AdversarialRun {
    /// Round cap.
    pub max_rounds: u64,
    /// A run "stabilizes" when at least this fraction of nodes supports one
    /// color (the paper's "almost-all" regime; plain consensus = 1.0).
    pub quorum_fraction: f64,
    /// RNG seed (protocol and adversary share one stream).
    pub seed: u64,
}

impl Default for AdversarialRun {
    fn default() -> Self {
        Self { max_rounds: 1_000_000, quorum_fraction: 0.9, seed: 0 }
    }
}

/// Outcome of an adversarial run.
#[derive(Debug, Clone)]
pub struct AdversarialOutcome {
    /// Round at which the quorum was first met, if ever.
    pub stabilized_round: Option<u64>,
    /// Whether the quorum color was valid (meaningful only when
    /// `stabilized_round.is_some()`).
    pub valid: bool,
    /// Final configuration.
    pub final_config: Configuration,
}

impl AdversarialOutcome {
    /// Whether the protocol both stabilized and did so on a valid color.
    pub fn byzantine_success(&self) -> bool {
        self.stabilized_round.is_some() && self.valid
    }
}

/// Runs `process` from `start` with `adversary` corrupting after every
/// round, until the quorum is met or the cap elapses.
pub fn run_adversarial<P: VectorStep>(
    process: &P,
    adversary: &mut dyn Adversary,
    start: Configuration,
    opts: &AdversarialRun,
) -> AdversarialOutcome {
    let tracker = ValidityTracker::from_initial(&start);
    let mut rng = Pcg64::seed_from_u64(opts.seed);
    let mut config = start;
    let mut round = 0u64;
    loop {
        if tracker.almost_all_valid(&config, opts.quorum_fraction)
            || quorum_met(&config, opts.quorum_fraction)
        {
            let valid = tracker.is_valid(config.plurality());
            return AdversarialOutcome {
                stabilized_round: Some(round),
                valid,
                final_config: config,
            };
        }
        if round >= opts.max_rounds {
            let valid = tracker.is_valid(config.plurality());
            return AdversarialOutcome { stabilized_round: None, valid, final_config: config };
        }
        config = process.vector_step(&config, &mut rng);
        adversary.corrupt(&mut config, &mut rng);
        round += 1;
    }
}

fn quorum_met(config: &Configuration, fraction: f64) -> bool {
    config.max_support() as f64 >= (config.n() as f64 * fraction).ceil()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategies::{MinoritySupporter, Nop, RandomFlipper, SplitKeeper};
    use symbreak_core::rules::ThreeMajority;

    #[test]
    fn nop_adversary_lets_protocol_converge() {
        let start = Configuration::uniform(512, 8);
        let out = run_adversarial(
            &ThreeMajority,
            &mut Nop,
            start,
            &AdversarialRun { max_rounds: 100_000, quorum_fraction: 1.0, seed: 1 },
        );
        assert!(out.byzantine_success(), "unhindered run must succeed");
    }

    #[test]
    fn small_random_corruption_is_tolerated() {
        let start = Configuration::uniform(1024, 4);
        let out = run_adversarial(
            &ThreeMajority,
            &mut RandomFlipper::new(2),
            start,
            &AdversarialRun { max_rounds: 100_000, quorum_fraction: 0.9, seed: 2 },
        );
        assert!(out.byzantine_success(), "F=2 random faults must be tolerated");
    }

    #[test]
    fn winner_is_a_valid_color_under_small_corruption() {
        let start = Configuration::uniform(512, 4);
        let out = run_adversarial(
            &ThreeMajority,
            &mut MinoritySupporter::new(1, 4),
            start,
            &AdversarialRun { max_rounds: 100_000, quorum_fraction: 0.9, seed: 3 },
        );
        assert!(out.byzantine_success());
    }

    #[test]
    fn massive_split_keeper_stalls_consensus() {
        // With budget Θ(n), the SplitKeeper pins the top two colors
        // together forever.
        let start = Configuration::uniform(256, 2);
        let out = run_adversarial(
            &ThreeMajority,
            &mut SplitKeeper::new(256),
            start,
            &AdversarialRun { max_rounds: 2_000, quorum_fraction: 0.9, seed: 4 },
        );
        assert!(out.stabilized_round.is_none(), "protocol should be stalled");
    }

    #[test]
    fn outcome_reports_final_config_mass() {
        let start = Configuration::uniform(128, 4);
        let out = run_adversarial(
            &ThreeMajority,
            &mut Nop,
            start,
            &AdversarialRun { max_rounds: 10, quorum_fraction: 1.0, seed: 5 },
        );
        assert_eq!(out.final_config.n(), 128);
    }
}
