//! Byzantine validity tracking.
//!
//! Byzantine agreement requires that the system never converges to a color
//! that no non-corrupted node supported initially (footnote 5 of the
//! paper). [`ValidityTracker`] records the initially supported ("valid")
//! colors and judges final configurations against them.

use symbreak_core::{Configuration, Opinion};

/// The exact quorum threshold: the smallest integer count `q` with
/// `q ≥ n·fraction`, where `fraction` is read as the decimal the caller
/// wrote, not its floating-point representative.
///
/// Computing `(n as f64 * fraction).ceil()` directly is wrong for
/// non-representable fractions: `100.0 * 0.55 = 55.000000000000007`, so
/// `.ceil()` demands 56/100 nodes instead of 55 — an off-by-one that
/// silently shifts every stabilization observable. The product carries
/// only relative rounding error (a few ulps), so snapping it to the
/// nearest integer when within a `10⁻⁹` *relative* band recovers the
/// intended value at every population size before the ceiling is
/// taken. The snap deliberately treats any fraction within the band as
/// the exact ratio it sits next to: a fraction written with `d`
/// decimal digits keeps a genuinely fractional product at least
/// `10⁻ᵈ` from the integers, so short decimals (the intended use) are
/// never mis-snapped while `n·fraction < 10⁹⁻ᵈ`; fractions engineered
/// to within `10⁻⁹` (relative) of a boundary — e.g. `0.5500000001` at
/// `n = 10⁵` — are outside this helper's contract and resolve to the
/// nearby ratio.
///
/// Public because every quorum in the workspace should share one
/// integer-exact threshold: the cluster runtime's fault-tolerant
/// coordinator reuses it to turn "proceed on `N − F` shard reports"
/// into an exact count over the fleet size.
pub fn quorum_threshold(n: u64, fraction: f64) -> u64 {
    let product = n as f64 * fraction;
    let nearest = product.round();
    if (product - nearest).abs() <= nearest.abs().max(1.0) * 1e-9 {
        nearest as u64
    } else {
        product.ceil() as u64
    }
}

/// Tracks the set of valid colors of a run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidityTracker {
    valid: Vec<bool>,
}

impl ValidityTracker {
    /// Captures the valid colors from the initial (pre-corruption)
    /// configuration: every color with non-zero support.
    pub fn from_initial(config: &Configuration) -> Self {
        Self { valid: config.counts().iter().map(|&c| c > 0).collect() }
    }

    /// Whether `color` is valid.
    pub fn is_valid(&self, color: Opinion) -> bool {
        self.valid.get(color.index()).copied().unwrap_or(false)
    }

    /// Number of valid colors.
    pub fn num_valid(&self) -> usize {
        self.valid.iter().filter(|&&v| v).count()
    }

    /// Whether a final configuration satisfies validity under the
    /// "almost-all" regime: at least `quorum_fraction` of the mass sits on
    /// a single valid color.
    pub fn almost_all_valid(&self, config: &Configuration, quorum_fraction: f64) -> bool {
        assert!((0.0..=1.0).contains(&quorum_fraction), "fraction in [0,1]");
        let winner = config.plurality();
        let quorum = quorum_threshold(config.n(), quorum_fraction);
        config.support(winner.index()) >= quorum && self.is_valid(winner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_colors_are_the_initially_supported_ones() {
        let c = Configuration::from_counts(vec![5, 0, 3, 0]);
        let t = ValidityTracker::from_initial(&c);
        assert!(t.is_valid(Opinion::new(0)));
        assert!(!t.is_valid(Opinion::new(1)));
        assert!(t.is_valid(Opinion::new(2)));
        assert_eq!(t.num_valid(), 2);
        // Out-of-range colors are invalid.
        assert!(!t.is_valid(Opinion::new(17)));
    }

    #[test]
    fn almost_all_valid_accepts_valid_quorum() {
        let start = Configuration::from_counts(vec![5, 5, 0]);
        let t = ValidityTracker::from_initial(&start);
        let end = Configuration::from_counts(vec![9, 1, 0]);
        assert!(t.almost_all_valid(&end, 0.9));
        assert!(!t.almost_all_valid(&end, 0.95));
    }

    #[test]
    fn almost_all_valid_rejects_invalid_winner() {
        let start = Configuration::from_counts(vec![5, 5, 0]);
        let t = ValidityTracker::from_initial(&start);
        // The adversary manufactured consensus on the initially-dead color.
        let end = Configuration::from_counts(vec![0, 0, 10]);
        assert!(!t.almost_all_valid(&end, 0.5));
    }

    #[test]
    fn quorum_threshold_is_integer_exact() {
        // 100 · 0.55 = 55.000000000000007 in f64; ceiling that demands 56.
        assert_eq!(quorum_threshold(100, 0.55), 55);
        assert_eq!(quorum_threshold(100, 0.551), 56);
        assert_eq!(quorum_threshold(10, 0.9), 9);
        assert_eq!(quorum_threshold(1000, 1.0), 1000);
        assert_eq!(quorum_threshold(7, 0.0), 0);
        // Truly fractional products still round up.
        assert_eq!(quorum_threshold(10, 0.55), 6);
        assert_eq!(quorum_threshold(3, 1.0 / 3.0), 1);
        // Large n: the absolute float error grows past any fixed-point
        // slack, but the relative snap still recovers the exact value
        // (1e8 · 0.55 = 55000000.00000001 in f64).
        assert_eq!(quorum_threshold(100_000_000, 0.55), 55_000_000);
        assert_eq!(quorum_threshold(100_000_000, 1.0), 100_000_000);
    }

    #[test]
    fn almost_all_valid_uses_the_exact_threshold() {
        let start = Configuration::from_counts(vec![60, 40]);
        let t = ValidityTracker::from_initial(&start);
        // 55/100 meets a 0.55 quorum exactly; the float `.ceil()` path
        // required 56.
        let end = Configuration::from_counts(vec![55, 45]);
        assert!(t.almost_all_valid(&end, 0.55));
        assert!(!t.almost_all_valid(&Configuration::from_counts(vec![54, 46]), 0.55));
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn bad_quorum_fraction_panics() {
        let c = Configuration::uniform(4, 2);
        ValidityTracker::from_initial(&c).almost_all_valid(&c, 1.5);
    }
}
