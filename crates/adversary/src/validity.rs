//! Byzantine validity tracking.
//!
//! Byzantine agreement requires that the system never converges to a color
//! that no non-corrupted node supported initially (footnote 5 of the
//! paper). [`ValidityTracker`] records the initially supported ("valid")
//! colors and judges final configurations against them.

use symbreak_core::{Configuration, Opinion};

/// Tracks the set of valid colors of a run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidityTracker {
    valid: Vec<bool>,
}

impl ValidityTracker {
    /// Captures the valid colors from the initial (pre-corruption)
    /// configuration: every color with non-zero support.
    pub fn from_initial(config: &Configuration) -> Self {
        Self { valid: config.counts().iter().map(|&c| c > 0).collect() }
    }

    /// Whether `color` is valid.
    pub fn is_valid(&self, color: Opinion) -> bool {
        self.valid.get(color.index()).copied().unwrap_or(false)
    }

    /// Number of valid colors.
    pub fn num_valid(&self) -> usize {
        self.valid.iter().filter(|&&v| v).count()
    }

    /// Whether a final configuration satisfies validity under the
    /// "almost-all" regime: at least `quorum_fraction` of the mass sits on
    /// a single valid color.
    pub fn almost_all_valid(&self, config: &Configuration, quorum_fraction: f64) -> bool {
        assert!((0.0..=1.0).contains(&quorum_fraction), "fraction in [0,1]");
        let winner = config.plurality();
        let quorum = (config.n() as f64 * quorum_fraction).ceil() as u64;
        config.support(winner.index()) >= quorum && self.is_valid(winner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_colors_are_the_initially_supported_ones() {
        let c = Configuration::from_counts(vec![5, 0, 3, 0]);
        let t = ValidityTracker::from_initial(&c);
        assert!(t.is_valid(Opinion::new(0)));
        assert!(!t.is_valid(Opinion::new(1)));
        assert!(t.is_valid(Opinion::new(2)));
        assert_eq!(t.num_valid(), 2);
        // Out-of-range colors are invalid.
        assert!(!t.is_valid(Opinion::new(17)));
    }

    #[test]
    fn almost_all_valid_accepts_valid_quorum() {
        let start = Configuration::from_counts(vec![5, 5, 0]);
        let t = ValidityTracker::from_initial(&start);
        let end = Configuration::from_counts(vec![9, 1, 0]);
        assert!(t.almost_all_valid(&end, 0.9));
        assert!(!t.almost_all_valid(&end, 0.95));
    }

    #[test]
    fn almost_all_valid_rejects_invalid_winner() {
        let start = Configuration::from_counts(vec![5, 5, 0]);
        let t = ValidityTracker::from_initial(&start);
        // The adversary manufactured consensus on the initially-dead color.
        let end = Configuration::from_counts(vec![0, 0, 10]);
        assert!(!t.almost_all_valid(&end, 0.5));
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn bad_quorum_fraction_panics() {
        let c = Configuration::uniform(4, 2);
        ValidityTracker::from_initial(&c).almost_all_valid(&c, 1.5);
    }
}
