//! Pins the README experiment catalog to the actual experiment
//! binaries: every `crates/bench/src/bin/exp_*.rs` must appear in the
//! README's "Experiment catalog" table, so the table cannot silently rot
//! as experiments are added or renamed.

use std::fs;
use std::path::Path;

#[test]
fn readme_catalog_covers_every_experiment_binary() {
    let manifest = Path::new(env!("CARGO_MANIFEST_DIR"));
    let readme = fs::read_to_string(manifest.join("../../README.md")).expect("README.md readable");

    let (_, catalog) = readme
        .split_once("## Experiment catalog")
        .expect("README must have an '## Experiment catalog' section");
    // The table ends at the next section heading (if any).
    let catalog = catalog.split("\n## ").next().unwrap();

    let bin_dir = manifest.join("src/bin");
    let mut missing = Vec::new();
    let mut count = 0usize;
    for entry in fs::read_dir(&bin_dir).expect("src/bin readable") {
        let name = entry.expect("dir entry").file_name();
        let name = name.to_string_lossy();
        let Some(stem) = name.strip_suffix(".rs") else { continue };
        if !stem.starts_with("exp_") {
            continue;
        }
        count += 1;
        // Each experiment is listed by its binary name, backticked.
        if !catalog.contains(&format!("`{stem}`")) {
            missing.push(stem.to_string());
        }
    }
    assert!(count >= 26, "expected the full E1–E26 experiment set, found {count}");
    assert!(
        missing.is_empty(),
        "experiment binaries missing from the README catalog table: {missing:?}"
    );

    // And the reverse: every catalog row must name a real binary, so
    // renamed or deleted experiments cannot leave stale rows behind.
    let mut stale = Vec::new();
    for line in catalog.lines() {
        let Some(rest) = line.strip_prefix("| `exp_") else { continue };
        let Some(stem) = rest.split('`').next().map(|s| format!("exp_{s}")) else { continue };
        if !bin_dir.join(format!("{stem}.rs")).is_file() {
            stale.push(stem);
        }
    }
    assert!(stale.is_empty(), "README catalog rows with no matching binary: {stale:?}");
}
