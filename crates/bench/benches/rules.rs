//! Per-rule vectorized one-step cost at fixed configuration size.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::SeedableRng;
use symbreak_core::rules::{ThreeMajority, TwoChoices, Voter};
use symbreak_core::{Configuration, VectorStep};
use symbreak_sim::rng::Pcg64;

fn bench_rules(c: &mut Criterion) {
    let mut group = c.benchmark_group("vector_step");
    group.sample_size(30);
    let start = Configuration::uniform(65_536, 256);
    let mut rng = Pcg64::seed_from_u64(1);
    group.bench_function("voter_n65536_k256", |b| {
        b.iter(|| Voter.vector_step(&start, &mut rng));
    });
    group.bench_function("two_choices_n65536_k256", |b| {
        b.iter(|| TwoChoices.vector_step(&start, &mut rng));
    });
    group.bench_function("three_majority_n65536_k256", |b| {
        b.iter(|| ThreeMajority.vector_step(&start, &mut rng));
    });
    group.finish();
}

criterion_group!(benches, bench_rules);
criterion_main!(benches);
