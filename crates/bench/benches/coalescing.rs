//! Coalescing-random-walk stepping and duality-coupling generation.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::SeedableRng;
use symbreak_graphs::{CoalescingWalks, DualityCoupling, Graph};
use symbreak_sim::rng::Pcg64;

fn bench_coalescing(c: &mut Criterion) {
    let mut group = c.benchmark_group("coalescing");
    group.sample_size(20);
    let g = Graph::complete(1_024);
    group.bench_function("full_coalescence_k1024", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let mut rng = Pcg64::seed_from_u64(seed);
            let mut w = CoalescingWalks::new(&g);
            w.run_until(1, u64::MAX, &mut rng).expect("coalesces")
        });
    });
    let small = Graph::complete(128);
    group.bench_function("duality_coupling_k128", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let mut rng = Pcg64::seed_from_u64(seed);
            DualityCoupling::generate_until_coalesced(&small, 1, 1_000_000, &mut rng)
                .expect("coalesces")
        });
    });
    group.finish();
}

criterion_group!(benches, bench_coalescing);
criterion_main!(benches);
