//! Cost of the majorization primitives used by the dominance machinery.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::{Rng, SeedableRng};
use symbreak_majorization::transfer::transfer_chain;
use symbreak_majorization::vector::{lorenz_prefix_sums, majorizes};
use symbreak_sim::rng::Pcg64;

fn bench_majorization(c: &mut Criterion) {
    let mut rng = Pcg64::seed_from_u64(1);
    let d = 1_024;
    let x: Vec<f64> = (0..d).map(|_| rng.gen::<f64>()).collect();
    let total: f64 = x.iter().sum();
    let uniform = vec![total / d as f64; d];

    let mut group = c.benchmark_group("majorization");
    group.bench_function("majorizes_d1024", |b| {
        b.iter(|| majorizes(&x, &uniform));
    });
    group.bench_function("lorenz_prefix_sums_d1024", |b| {
        b.iter(|| lorenz_prefix_sums(&x));
    });
    group.bench_function("transfer_chain_d1024", |b| {
        b.iter(|| transfer_chain(&x, &uniform, 1e-9).expect("x majorizes uniform"));
    });
    group.finish();
}

criterion_group!(benches, bench_majorization);
criterion_main!(benches);
