//! End-to-end consensus runs at small n — one bench per headline process,
//! mirroring the E1/E2/E13 experiment families at benchable scale.

use criterion::{criterion_group, criterion_main, Criterion};
use symbreak_core::rules::{ThreeMajority, TwoChoices, Voter};
use symbreak_core::{run_to_consensus, Configuration, RunOptions, VectorEngine, VectorStep};

fn run<R: VectorStep + Clone>(rule: R, start: &Configuration, seed: u64) -> u64 {
    let mut engine = VectorEngine::new(rule, start.clone(), seed).with_compaction();
    run_to_consensus(&mut engine, &RunOptions { max_rounds: u64::MAX, record_trace: false })
        .consensus_round
        .expect("reaches consensus")
}

fn bench_consensus(c: &mut Criterion) {
    let mut group = c.benchmark_group("consensus_from_singletons_n512");
    group.sample_size(20);
    let start = Configuration::singletons(512);
    let mut seed = 0u64;
    group.bench_function("voter", |b| {
        b.iter(|| {
            seed += 1;
            run(Voter, &start, seed)
        });
    });
    group.bench_function("two_choices", |b| {
        b.iter(|| {
            seed += 1;
            run(TwoChoices, &start, seed)
        });
    });
    group.bench_function("three_majority", |b| {
        b.iter(|| {
            seed += 1;
            run(ThreeMajority, &start, seed)
        });
    });
    group.finish();

    let mut group = c.benchmark_group("consensus_biased_n4096");
    group.sample_size(20);
    let biased = Configuration::from_counts(vec![3_072, 1_024]);
    group.bench_function("two_choices_bias", |b| {
        b.iter(|| {
            seed += 1;
            run(TwoChoices, &biased, seed)
        });
    });
    group.bench_function("three_majority_bias", |b| {
        b.iter(|| {
            seed += 1;
            run(ThreeMajority, &biased, seed)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_consensus);
criterion_main!(benches);
