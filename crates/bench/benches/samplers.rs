//! Throughput of the from-scratch samplers: binomial (both regimes),
//! multinomial, and the alias method.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::SeedableRng;
use symbreak_sim::dist::{Binomial, Categorical, Multinomial};
use symbreak_sim::rng::Pcg64;

fn bench_samplers(c: &mut Criterion) {
    let mut rng = Pcg64::seed_from_u64(1);

    let mut group = c.benchmark_group("binomial");
    group.bench_function("inversion_np2.5", |b| {
        let d = Binomial::new(50, 0.05);
        b.iter(|| d.sample(&mut rng));
    });
    group.bench_function("btrs_np300", |b| {
        let d = Binomial::new(1_000, 0.3);
        b.iter(|| d.sample(&mut rng));
    });
    group.bench_function("btrs_np500000", |b| {
        let d = Binomial::new(1_000_000, 0.5);
        b.iter(|| d.sample(&mut rng));
    });
    group.finish();

    let mut group = c.benchmark_group("multinomial");
    for &k in &[16usize, 256, 4_096] {
        let theta = vec![1.0 / k as f64; k];
        let m = Multinomial::new(1_000_000, &theta);
        let mut out = vec![0u64; k];
        group.bench_function(format!("n1e6_k{k}"), |b| {
            b.iter(|| m.sample_into(&mut rng, &mut out));
        });
    }
    group.finish();

    let mut group = c.benchmark_group("categorical");
    let weights: Vec<f64> = (1..=1_024).map(|i| i as f64).collect();
    let cat = Categorical::new(&weights);
    group.bench_function("alias_build_k1024", |b| {
        b.iter(|| Categorical::new(&weights));
    });
    group.bench_function("alias_draw_k1024", |b| {
        b.iter(|| cat.sample(&mut rng));
    });
    group.finish();
}

criterion_group!(benches, bench_samplers);
criterion_main!(benches);
