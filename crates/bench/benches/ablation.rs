//! Ablation benchmarks for the design choices DESIGN.md calls out:
//!
//! * zero-slot compaction in the vector engine (the `O(k_remaining)` vs
//!   `O(k_initial)` per-round cost);
//! * the binomial sampler's regime split (forcing inversion at large
//!   means vs letting BTRS take over);
//! * agent-engine sampling cost as a function of the sample count h.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use symbreak_core::rules::{HMajority, ThreeMajority};
use symbreak_core::{AgentEngine, Configuration, Engine, VectorEngine};
use symbreak_sim::dist::Binomial;
use symbreak_sim::rng::Pcg64;

fn bench_compaction_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_compaction");
    group.sample_size(10);
    // Full consensus run from many colors: with compaction the total work
    // is Σ k_t; without it, rounds × k_initial.
    for &n in &[4_096u64, 16_384] {
        group.bench_with_input(BenchmarkId::new("with_compaction", n), &n, |b, &n| {
            let mut seed = 0;
            b.iter(|| {
                seed += 1;
                let mut e = VectorEngine::new(ThreeMajority, Configuration::singletons(n), seed)
                    .with_compaction();
                while !e.is_consensus() {
                    e.step();
                }
                e.round()
            });
        });
        group.bench_with_input(BenchmarkId::new("without_compaction", n), &n, |b, &n| {
            let mut seed = 0;
            b.iter(|| {
                seed += 1;
                let mut e = VectorEngine::new(ThreeMajority, Configuration::singletons(n), seed);
                while !e.is_consensus() {
                    e.step();
                }
                e.round()
            });
        });
    }
    group.finish();
}

fn bench_binomial_regimes(c: &mut Criterion) {
    // The BTRS/inversion split is at n·min(p,1−p) = 10; probe both sides
    // of the boundary to justify the threshold.
    let mut group = c.benchmark_group("ablation_binomial_boundary");
    let mut rng = Pcg64::seed_from_u64(1);
    for &np in &[2.0f64, 8.0, 12.0, 50.0] {
        let n = 10_000u64;
        let p = np / n as f64;
        group.bench_with_input(BenchmarkId::new("np", np as u64), &np, |b, _| {
            let d = Binomial::new(n, p);
            b.iter(|| d.sample(&mut rng));
        });
    }
    group.finish();
}

fn bench_agent_engine_h_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_agent_h");
    group.sample_size(20);
    let start = Configuration::uniform(4_096, 64);
    for h in [1usize, 3, 5, 7] {
        group.bench_with_input(BenchmarkId::new("h", h), &h, |b, &h| {
            let mut e = AgentEngine::new(HMajority::new(h), &start, 1);
            b.iter(|| e.step());
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_compaction_ablation,
    bench_binomial_regimes,
    bench_agent_engine_h_scaling
);
criterion_main!(benches);
