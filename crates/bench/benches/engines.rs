//! Round throughput of the two engines: agent-level `O(n·h)` vs
//! vectorized `O(k)`. The gap is what makes the large-n sweeps (E1–E3)
//! feasible.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use symbreak_core::rules::ThreeMajority;
use symbreak_core::{AgentEngine, Configuration, Engine, VectorEngine};

fn bench_engines(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_round");
    group.sample_size(20);
    for &n in &[1_024u64, 8_192] {
        let k = 64usize;
        let start = Configuration::uniform(n, k);
        group.bench_with_input(BenchmarkId::new("agent_3M", n), &n, |b, _| {
            let mut engine = AgentEngine::new(ThreeMajority, &start, 1);
            b.iter(|| engine.step());
        });
        group.bench_with_input(BenchmarkId::new("vector_3M", n), &n, |b, _| {
            let mut engine = VectorEngine::new(ThreeMajority, start.clone(), 2);
            b.iter(|| engine.step());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_engines);
criterion_main!(benches);
