//! Round throughput of the two engines: agent-level `O(n·h)` vs
//! vectorized `O(k)`. The gap is what makes the large-n sweeps (E1–E3)
//! feasible.
//!
//! The agent engine is benchmarked in both sampling modes: the seed's
//! per-node path (`gen_range` + random-access opinion reads) and the
//! alias-table path (one `O(k)` sampler per round, `O(1)` per draw,
//! with run-length/constant fast forms on concentrated rounds).
//!
//! Two measurement styles, reported separately because they answer
//! different questions:
//!
//! * `…/trajectory` — step one persistent engine, as a real simulation
//!   does. The trajectory concentrates quickly (consensus ≈ round 120
//!   at `n = 10^5, k = 100`), so this is dominated by the run-length
//!   and absorbed regimes — exactly where the sampler redesign pays.
//!   The ≥3× acceptance bar for this PR is on this workload.
//! * `…_round/<state>` — a single round from a *fixed* configuration
//!   (fresh engine clone per iteration; the clone overhead is identical
//!   across modes). `uniform` is the alias form's worst case — it
//!   roughly ties per-node there; `concentrated` (90% plurality) shows
//!   the live run-length win.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::RngCore;
use symbreak_core::rules::{ThreeMajority, Voter};
use symbreak_core::{AgentEngine, Configuration, Engine, SamplingMode, VectorEngine, VectorStep};
use symbreak_runtime::{Cluster, ClusterConfig, ConsumeMode, ReportMode, WireMode};

/// The PR-1 per-round path, preserved for comparison: only `vector_step`
/// is implemented, so the engine steps through the default shim — a fresh
/// dense `O(k)` configuration allocated every round.
struct DensePath<R>(R);

impl<R: VectorStep> VectorStep for DensePath<R> {
    fn vector_step(&self, c: &Configuration, rng: &mut dyn RngCore) -> Configuration {
        self.0.vector_step(c, rng)
    }
}

fn bench_engines(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_round");
    group.sample_size(20);
    for &n in &[1_024u64, 8_192] {
        let k = 64usize;
        let start = Configuration::uniform(n, k);
        group.bench_with_input(BenchmarkId::new("agent_3M", n), &n, |b, _| {
            let mut engine = AgentEngine::new(ThreeMajority, &start, 1);
            b.iter(|| engine.step());
        });
        group.bench_with_input(BenchmarkId::new("agent_3M_per_node", n), &n, |b, _| {
            let mut engine =
                AgentEngine::with_sampling(ThreeMajority, &start, 1, SamplingMode::PerNode);
            b.iter(|| engine.step());
        });
        group.bench_with_input(BenchmarkId::new("vector_3M", n), &n, |b, _| {
            let mut engine = VectorEngine::new(ThreeMajority, start.clone(), 2);
            b.iter(|| engine.step());
        });
    }
    group.finish();

    // The headline workload: n = 10^5, k = 100, trajectory style.
    let mut group = c.benchmark_group("engine_round_1e5");
    group.sample_size(10);
    let n = 100_000u64;
    let k = 100usize;
    let start = Configuration::uniform(n, k);
    group.bench_with_input(BenchmarkId::new("agent_3M_native/trajectory", n), &n, |b, _| {
        // SamplingMode::Native: the multiset window-split dispatch (the
        // default); pairs against the ordered alias path below.
        let mut engine = AgentEngine::new(ThreeMajority, &start, 1);
        b.iter(|| engine.step());
    });
    group.bench_with_input(BenchmarkId::new("agent_3M_alias/trajectory", n), &n, |b, _| {
        let mut engine =
            AgentEngine::with_sampling(ThreeMajority, &start, 1, SamplingMode::AliasTable);
        b.iter(|| engine.step());
    });
    group.bench_with_input(BenchmarkId::new("agent_3M_per_node/trajectory", n), &n, |b, _| {
        let mut engine =
            AgentEngine::with_sampling(ThreeMajority, &start, 1, SamplingMode::PerNode);
        b.iter(|| engine.step());
    });
    group.bench_with_input(BenchmarkId::new("vector_3M/trajectory", n), &n, |b, _| {
        let mut engine = VectorEngine::new(ThreeMajority, start.clone(), 2);
        b.iter(|| engine.step());
    });

    // Fixed-state single rounds: the same configuration every iteration.
    let mut concentrated_counts = vec![n / (10 * (k as u64 - 1)); k];
    concentrated_counts[0] = n - (k as u64 - 1) * (n / (10 * (k as u64 - 1)));
    let states = [
        ("uniform", start.clone()),
        ("concentrated", Configuration::from_counts(concentrated_counts)),
    ];
    for (state, config) in &states {
        for (mode_name, mode) in [
            ("native", SamplingMode::Native),
            ("alias", SamplingMode::AliasTable),
            ("per_node", SamplingMode::PerNode),
        ] {
            let id = BenchmarkId::new(&format!("agent_3M_{mode_name}_round"), state);
            group.bench_with_input(id, &n, |b, _| {
                let engine = AgentEngine::with_sampling(ThreeMajority, config, 1, mode);
                b.iter(|| {
                    let mut e = engine.clone();
                    e.step();
                    e.round()
                });
            });
        }
    }
    group.finish();

    // Singleton-start (k = n) trajectories: the Theorem-5 regime the
    // paper's separation lives in. A dense step pays O(k) per round for
    // the whole run; an occupancy-aware step pays O(#surviving colors),
    // which collapses within a few rounds of the singleton start.
    //
    // Whole trajectories, fresh engine per iteration (a persistent
    // engine would drift into the absorbed fixed point and time no-op
    // rounds), sparse vs the PR-1 dense path — `DensePath` above. Both
    // run the same seed, and the sparse step is seed-exact with the
    // dense one, so the two time the *identical* realized trajectory:
    // the ratio is exactly the amortized per-round improvement. The
    // ≥10x PR-2 acceptance bar is met on the Voter horizon at n = 10^5.
    let mut group = c.benchmark_group("engine_singleton_run");
    group.sample_size(10);
    for &n in &[10_000u64, 100_000] {
        group.bench_with_input(BenchmarkId::new("sparse_3M/full_consensus", n), &n, |b, &n| {
            b.iter(|| {
                let mut e = VectorEngine::new(ThreeMajority, Configuration::singletons(n), 7);
                while !e.is_consensus() {
                    e.step();
                }
                e.round()
            });
        });
        group.bench_with_input(BenchmarkId::new("dense_3M/full_consensus", n), &n, |b, &n| {
            b.iter(|| {
                let mut e =
                    VectorEngine::new(DensePath(ThreeMajority), Configuration::singletons(n), 7);
                while !e.is_consensus() {
                    e.step();
                }
                e.round()
            });
        });
        // Voter is the long-trajectory regime (Θ(n) rounds from the
        // singleton start): the occupancy collapses like ~2n/t while the
        // dense path stays O(k) per round, so a fixed 5000-round horizon
        // is where the sparse refactor's amortized win shows up in full.
        group.bench_with_input(BenchmarkId::new("sparse_voter/rounds_5000", n), &n, |b, &n| {
            b.iter(|| {
                let mut e = VectorEngine::new(Voter, Configuration::singletons(n), 5);
                for _ in 0..5_000 {
                    e.step();
                }
                e.round()
            });
        });
        group.bench_with_input(BenchmarkId::new("dense_voter/rounds_5000", n), &n, |b, &n| {
            b.iter(|| {
                let mut e = VectorEngine::new(DensePath(Voter), Configuration::singletons(n), 5);
                for _ in 0..5_000 {
                    e.step();
                }
                e.round()
            });
        });
    }
    group.finish();

    // The sharded runtime on the k = n = 1e5 singleton start, paired
    // across wire and report modes from the same seed.
    //
    // * Wire-mode pairs (`per_entry_*` vs `batched_*`) isolate the data
    //   plane: per-entry mode moves `2·n·h` request/reply entries
    //   through the channels every round (~7 ns/entry dominates cluster
    //   wall-clock), batched mode moves one pull batch + one opinion
    //   palette per shard pair (`O(#pairs · #distinct)` entries) and
    //   reconstitutes samples locally (expand + Fisher–Yates). The two
    //   modes consume randomness differently, so they realize different
    //   (equally lawful — pinned by `batched_wire_matches_per_entry_
    //   wire`) trajectories; the Voter workload therefore runs a FIXED
    //   2000-round horizon so both time an identical amount of work.
    // * Report-mode pairs within a wire mode (`*_sparse` vs `*_dense`
    //   vs `*_delta`) run the *identical* realized trajectory for a
    //   given seed (the report format never touches the protocol RNG
    //   streams; pinned by `report_modes_run_the_same_trajectory_*`)
    //   and isolate the control plane: dense pays a fresh `vec![0; k]`
    //   per shard plus an O(k) rebuild at the coordinator every round,
    //   sparse pays O(#occupied), delta pays O(#changed) once the
    //   changed-slot set collapses.
    let mut group = c.benchmark_group("cluster_singleton_run");
    group.sample_size(10);
    let n = 100_000u64;
    let wire_modes = [("per_entry", WireMode::PerEntry), ("batched", WireMode::Batched)];
    for shards in [4usize, 16] {
        for (wire_name, wire) in wire_modes {
            let id = BenchmarkId::new(
                &format!("{wire_name}_sparse_voter/rounds_2000/shards_{shards}"),
                n,
            );
            group.bench_with_input(id, &n, |b, &n| {
                b.iter(|| {
                    let cluster = Cluster::new(
                        Voter,
                        &Configuration::singletons(n),
                        ClusterConfig::new(shards, 23).with_wire_mode(wire),
                    );
                    cluster.run_horizon(2_000).rounds_run
                });
            });
        }
    }
    // Control-plane pairs on the batched data plane: dense vs sparse vs
    // delta, identical trajectory per pair.
    for (report_name, report) in
        [("dense", ReportMode::Dense), ("sparse", ReportMode::Sparse), ("delta", ReportMode::Delta)]
    {
        let id = BenchmarkId::new(
            &format!("batched_voter_report_{report_name}/rounds_2000/shards_16"),
            n,
        );
        group.bench_with_input(id, &n, |b, &n| {
            b.iter(|| {
                let cluster = Cluster::new(
                    Voter,
                    &Configuration::singletons(n),
                    ClusterConfig::new(16, 31).with_report_mode(report),
                );
                cluster.run_horizon(2_000).rounds_run
            });
        });
    }
    // Voter's concentrated tail: by round ~500 the occupancy is under
    // n·h/shards² and the batched wire's push gear takes over (no
    // pulls, alias sampling, per-round traffic independent of n), so a
    // longer fixed horizon isolates the concentrated-regime win that
    // the 2000-round horizon (3/4 diverse) dilutes.
    for (wire_name, wire) in wire_modes {
        let id = BenchmarkId::new(&format!("{wire_name}_sparse_voter/rounds_6000/shards_16"), n);
        group.bench_with_input(id, &n, |b, &n| {
            b.iter(|| {
                let cluster = Cluster::new(
                    Voter,
                    &Configuration::singletons(n),
                    ClusterConfig::new(16, 23).with_wire_mode(wire),
                );
                cluster.run_horizon(6_000).rounds_run
            });
        });
    }
    // 3-Majority's concentrated regime (h = 3, opinions collapse within
    // ~50 rounds of the singleton start): a FIXED 300-round horizon —
    // just under the ~310-round consensus time — so the wire modes time
    // identical work here too, rather than their (seed-dependent,
    // per-mode) consensus round.
    for (wire_name, wire) in wire_modes {
        let id = BenchmarkId::new(&format!("{wire_name}_sparse_3M/rounds_300/shards_16"), n);
        group.bench_with_input(id, &n, |b, &n| {
            b.iter(|| {
                let cluster = Cluster::new(
                    ThreeMajority,
                    &Configuration::singletons(n),
                    ClusterConfig::new(16, 29).with_wire_mode(wire),
                );
                cluster.run_horizon(300).rounds_run
            });
        });
    }
    // Sample-consumption pairs on the batched wire (PR 5): the batched_*
    // workloads above run ConsumeMode::Native (the default); these
    // `_ordered` twins force the PR 4 ordered-window dealing on the
    // same seeds and horizons. Voter/rounds_2000/shards_16 is the
    // documented diverse-regime floor (batched ≈ per-entry there): the
    // native single-peer path deletes the Fisher–Yates dealing, the
    // sample buffer, and the per-node rule calls, which is the only
    // lever left on that floor. The 3M pair exercises the multiset
    // window splits (diverse fallback → hypergeometric/push-walk).
    for (rule_name, horizon, seed) in [("voter", 2_000u64, 23u64), ("3M", 300, 29)] {
        let id =
            BenchmarkId::new(&format!("batched_ordered_{rule_name}/rounds_{horizon}/shards_16"), n);
        group.bench_with_input(id, &n, |b, &n| {
            b.iter(|| {
                let cfg = ClusterConfig::new(16, seed).with_consume_mode(ConsumeMode::Ordered);
                let start = Configuration::singletons(n);
                if rule_name == "voter" {
                    Cluster::new(Voter, &start, cfg).run_horizon(horizon).rounds_run
                } else {
                    Cluster::new(ThreeMajority, &start, cfg).run_horizon(horizon).rounds_run
                }
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_engines);
criterion_main!(benches);
