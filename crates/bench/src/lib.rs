#![warn(missing_docs)]
//! Shared harness for the experiment binaries (`src/bin/exp_e*.rs`).
//!
//! Every binary regenerates one quantitative claim of the paper (see
//! DESIGN.md §1 for the experiment index) and prints:
//!
//! 1. a Markdown table with the regenerated series,
//! 2. a `VERDICT:` line stating whether the measured shape matches the
//!    paper's claim.
//!
//! Scale knob: set `SYMBREAK_SCALE` (default `1.0`) to multiply trial
//! counts and the largest problem sizes; `0.25` gives a quick smoke run,
//! `4` a publication-quality one.

use symbreak_core::rules::{ThreeMajority, TwoChoices, Voter};
use symbreak_core::{
    hitting_time_colors, run_to_consensus, Configuration, Engine, RunOptions, VectorEngine,
    VectorStep,
};
use symbreak_sim::run_trials;

/// Reads the global scale factor from `SYMBREAK_SCALE` (default 1.0).
pub fn scale() -> f64 {
    std::env::var("SYMBREAK_SCALE")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .filter(|&s| s > 0.0)
        .unwrap_or(1.0)
}

/// Scales a trial count by [`scale`], with a floor of 3.
pub fn scaled_trials(base: u64) -> u64 {
    ((base as f64 * scale()).round() as u64).max(3)
}

/// Prints a section header.
pub fn section(title: &str) {
    println!("\n## {title}\n");
}

/// Prints a standardized verdict line and exits non-zero on failure (so
/// `run_all` and CI can aggregate).
pub fn verdict(experiment: &str, claim: &str, pass: bool) {
    let status = if pass { "PASS" } else { "FAIL" };
    println!("\nVERDICT [{experiment}] {status}: {claim}");
    if !pass {
        std::process::exit(1);
    }
}

/// Measures consensus times of a vectorized rule over independent trials
/// (compacting engine; suitable for permutation-invariant observables).
pub fn consensus_times<R>(rule: R, start: &Configuration, trials: u64, seed: u64) -> Vec<u64>
where
    R: VectorStep + Clone + Send + Sync,
{
    let start = start.clone();
    run_trials(trials, seed, move |_t, s| {
        let mut engine = VectorEngine::new(rule.clone(), start.clone(), s).with_compaction();
        let out = run_to_consensus(
            &mut engine,
            &RunOptions { max_rounds: u64::MAX, record_trace: false },
        );
        out.consensus_round.expect("uncapped run reaches consensus")
    })
}

/// Measures the hitting times `T^κ` of a vectorized rule over independent
/// trials.
pub fn hitting_times<R>(
    rule: R,
    start: &Configuration,
    kappa: usize,
    trials: u64,
    seed: u64,
) -> Vec<u64>
where
    R: VectorStep + Clone + Send + Sync,
{
    let start = start.clone();
    run_trials(trials, seed, move |_t, s| {
        let mut engine = VectorEngine::new(rule.clone(), start.clone(), s).with_compaction();
        hitting_time_colors(&mut engine, kappa, u64::MAX).expect("uncapped")
    })
}

/// The three headline rules with display names, for comparison tables.
pub fn headline_rules() -> Vec<(&'static str, HeadlineRule)> {
    vec![
        ("Voter", HeadlineRule::Voter),
        ("2-Choices", HeadlineRule::TwoChoices),
        ("3-Majority", HeadlineRule::ThreeMajority),
    ]
}

/// A closed enum over the headline rules so tables can iterate them
/// uniformly despite their distinct types.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HeadlineRule {
    /// The Voter baseline.
    Voter,
    /// The "ignore" rule.
    TwoChoices,
    /// The "comply" rule.
    ThreeMajority,
}

impl VectorStep for HeadlineRule {
    fn vector_step(&self, c: &Configuration, rng: &mut dyn rand::RngCore) -> Configuration {
        match self {
            HeadlineRule::Voter => Voter.vector_step(c, rng),
            HeadlineRule::TwoChoices => TwoChoices.vector_step(c, rng),
            HeadlineRule::ThreeMajority => ThreeMajority.vector_step(c, rng),
        }
    }

    fn vector_step_into(&self, c: &mut Configuration, rng: &mut dyn rand::RngCore) {
        match self {
            HeadlineRule::Voter => Voter.vector_step_into(c, rng),
            HeadlineRule::TwoChoices => TwoChoices.vector_step_into(c, rng),
            HeadlineRule::ThreeMajority => ThreeMajority.vector_step_into(c, rng),
        }
    }
}

/// Runs a boxed engine until consensus and returns the round.
pub fn drive_to_consensus(engine: &mut dyn Engine, max_rounds: u64) -> Option<u64> {
    let out = run_to_consensus(engine, &RunOptions { max_rounds, record_trace: false });
    out.consensus_round
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn consensus_times_are_positive_and_reproducible() {
        let start = Configuration::singletons(64);
        let a = consensus_times(HeadlineRule::ThreeMajority, &start, 5, 7);
        let b = consensus_times(HeadlineRule::ThreeMajority, &start, 5, 7);
        assert_eq!(a, b);
        assert!(a.iter().all(|&t| t > 0));
    }

    #[test]
    fn hitting_times_bounded_by_consensus_times() {
        let start = Configuration::singletons(128);
        let h = hitting_times(HeadlineRule::Voter, &start, 8, 4, 11);
        let c = consensus_times(HeadlineRule::Voter, &start, 4, 11);
        for (hk, ck) in h.iter().zip(&c) {
            assert!(hk <= ck, "T^8 must not exceed T^1");
        }
    }

    #[test]
    fn headline_rules_all_step() {
        let c = Configuration::uniform(100, 4);
        let mut rng = symbreak_sim::rng::Pcg64::seed_from_u64(1);
        use rand::SeedableRng as _;
        for (_, rule) in headline_rules() {
            assert_eq!(rule.vector_step(&c, &mut rng).n(), 100);
        }
    }

    #[test]
    fn scale_defaults_to_one() {
        // Can't portably mutate the env in tests; just check the floor.
        assert!(scaled_trials(10) >= 3);
    }
}
