//! E12 — Section 5: fault tolerance. 3-Majority tolerates a round-wise
//! adversary corrupting `F = O(√n / (k^{5/2} log n))` nodes (\[BCN+16\]),
//! converging to an almost-all regime on a **valid** color; far larger
//! budgets (e.g. a Θ(n) split-keeper) stall it.
//!
//! Sweeps F for three adversary strategies and reports stabilization rate
//! (quorum 0.9), mean stabilization time, and validity.

use symbreak_adversary::{
    run_adversarial, AdversarialRun, MinoritySupporter, Nop, RandomFlipper, SplitKeeper,
};
use symbreak_bench::{scaled_trials, section, verdict};
use symbreak_core::rules::ThreeMajority;
use symbreak_core::theory::three_majority_tolerated_corruptions;
use symbreak_core::Configuration;
use symbreak_sim::{run_trials, trial_seed};
use symbreak_stats::table::fmt_f64;
use symbreak_stats::Table;

fn main() {
    println!("# E12: 3-Majority under round-wise Byzantine corruption (Section 5)");
    let n: u64 = 4096;
    let k = 4usize;
    let trials = scaled_trials(15);
    let max_rounds = 30_000u64;
    let start = Configuration::uniform(n, k);
    println!(
        "\ntheory scale: tolerated F ~ √n/(k^2.5 ln n) = {:.2} (constants unspecified)",
        three_majority_tolerated_corruptions(n, k as u64)
    );

    section("Stabilization (quorum 0.9) and validity per adversary and budget F");
    let mut table = Table::new(vec![
        "adversary",
        "F",
        "stabilized",
        "valid winner",
        "mean rounds (stabilized runs)",
    ]);
    let mut tolerated_ok = true;
    let mut stalled_ok = true;

    let budgets = [0u64, 1, 4, 16, 64, 256];
    for &f in &budgets {
        for strat in ["RandomFlipper", "MinoritySupporter", "SplitKeeper"] {
            let start = start.clone();
            let results = run_trials(trials, 2100 + f, move |t, _s| {
                let opts = AdversarialRun {
                    max_rounds,
                    quorum_fraction: 0.9,
                    seed: trial_seed(3000 + f, t),
                };
                let out = match strat {
                    "RandomFlipper" => run_adversarial(
                        &ThreeMajority,
                        &mut RandomFlipper::new(f),
                        start.clone(),
                        &opts,
                    ),
                    "MinoritySupporter" => run_adversarial(
                        &ThreeMajority,
                        &mut MinoritySupporter::new(f, 4),
                        start.clone(),
                        &opts,
                    ),
                    "SplitKeeper" => run_adversarial(
                        &ThreeMajority,
                        &mut SplitKeeper::new(f),
                        start.clone(),
                        &opts,
                    ),
                    _ => run_adversarial(&ThreeMajority, &mut Nop, start.clone(), &opts),
                };
                (out.stabilized_round, out.valid)
            });
            let stabilized = results.iter().filter(|r| r.0.is_some()).count();
            let valid = results.iter().filter(|r| r.0.is_some() && r.1).count();
            let mean_rounds = {
                let v: Vec<u64> = results.iter().filter_map(|r| r.0).collect();
                if v.is_empty() {
                    f64::NAN
                } else {
                    v.iter().sum::<u64>() as f64 / v.len() as f64
                }
            };
            // Tolerance claim: tiny budgets never hurt; giant SplitKeeper stalls.
            if f <= 1 {
                tolerated_ok &= stabilized == trials as usize && valid == stabilized;
            }
            if f == 256 && strat == "SplitKeeper" {
                stalled_ok &= stabilized == 0;
            }
            table.row(vec![
                strat.to_string(),
                f.to_string(),
                format!("{stabilized}/{trials}"),
                format!("{valid}/{stabilized}"),
                if mean_rounds.is_nan() { "-".into() } else { fmt_f64(mean_rounds) },
            ]);
        }
    }
    println!("{table}");

    verdict(
        "E12",
        "small budgets are tolerated with a valid winner; a Θ(n)-budget split-keeper stalls consensus",
        tolerated_ok && stalled_ok,
    );
}
