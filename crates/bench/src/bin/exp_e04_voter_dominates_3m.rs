//! E4 — Lemma 2 / Theorem 2: `T^κ_{3M}(c) ≤_st T^κ_V(c)` for every κ.
//!
//! For each κ in a sweep, collects the hitting-time samples of both
//! processes from the same initial configuration and tests first-order
//! stochastic dominance on the empirical CDFs (violations must stay below
//! the two-sample KS threshold). Also re-checks the analytic Lemma-2
//! inequality `α^{(3M)}(c) ⪰ α^{(V)}(c̃)` on random majorizing pairs.

use rand::SeedableRng;
use symbreak_bench::{hitting_times, scaled_trials, section, verdict, HeadlineRule};
use symbreak_core::dominance::{lemma2_inequality, random_majorizing_pair};
use symbreak_core::Configuration;
use symbreak_sim::rng::Pcg64;
use symbreak_stats::ecdf::ks_threshold;
use symbreak_stats::table::fmt_f64;
use symbreak_stats::{StochasticOrder, Summary, Table};

fn main() {
    println!("# E4: Voter stochastically dominates 3-Majority in colors remaining (Lemma 2)");
    let n: u64 = 4096;
    let trials = scaled_trials(300);
    let start = Configuration::singletons(n);

    section("Analytic premise: α^(3M)(c) ⪰ α^(V)(c̃) on random majorizing pairs");
    let mut rng = Pcg64::seed_from_u64(41);
    let pairs = 2_000;
    let mut premise_ok = true;
    for _ in 0..pairs {
        let (c, ct) = random_majorizing_pair(256, 8, 4, &mut rng);
        premise_ok &= lemma2_inequality(&c, &ct);
    }
    println!(
        "checked {pairs} random majorizing pairs: {}",
        if premise_ok { "all hold" } else { "VIOLATED" }
    );

    section("Hitting-time dominance per κ (n = 4096, singleton start)");
    let mut table = Table::new(vec![
        "kappa",
        "mean T^k 3M",
        "mean T^k Voter",
        "max CDF violation",
        "KS threshold (α=0.01)",
        "dominance",
    ]);
    let mut all_hold = true;
    for (i, &kappa) in [1024usize, 256, 64, 16, 4, 1].iter().enumerate() {
        let t3 = hitting_times(HeadlineRule::ThreeMajority, &start, kappa, trials, 600 + i as u64);
        let tv = hitting_times(HeadlineRule::Voter, &start, kappa, trials, 700 + i as u64);
        let order = StochasticOrder::test_counts(&t3, &tv);
        let threshold = ks_threshold(t3.len(), tv.len(), 1.63);
        let holds = order.holds_within(threshold);
        all_hold &= holds;
        table.row(vec![
            kappa.to_string(),
            fmt_f64(Summary::of_counts(&t3).mean()),
            fmt_f64(Summary::of_counts(&tv).mean()),
            fmt_f64(order.max_violation),
            fmt_f64(threshold),
            if holds { "3M ≤st Voter ✓".into() } else { "VIOLATED".to_string() },
        ]);
    }
    println!("{table}");

    verdict(
        "E4",
        "T^κ of 3-Majority is stochastically dominated by T^κ of Voter for every κ",
        premise_ok && all_hold,
    );
}
