//! E18 — the related-work landscape (\[CEOR13\], \[CER14\]): Voter /
//! coalescence across topologies. \[CEOR13\] bounds expected coalescing
//! time by `O(1/μ · (log⁴ n + ρ))` where `μ` is the spectral gap — so at
//! fixed n, better-expanding graphs must coalesce faster.
//!
//! Measures mean `T^1_C` and the estimated spectral gap for seven
//! topologies at n ≈ 64 and checks the ordering: expanders ≤ complete-ish
//! ≤ trees/paths ≤ lollipop-class.

use rand::SeedableRng;
use symbreak_bench::{scaled_trials, section, verdict};
use symbreak_graphs::{coalescence_time, spectral_gap_estimate, Graph};
use symbreak_sim::rng::Pcg64;
use symbreak_sim::run_trials;
use symbreak_stats::table::fmt_f64;
use symbreak_stats::{Summary, Table};

fn main() {
    println!("# E18: coalescence time vs spectral gap across topologies");
    let trials = scaled_trials(30);

    section("Mean coalescence time T^1_C and spectral gap (n ≈ 64)");
    let mut rng = Pcg64::seed_from_u64(9);
    let graphs: Vec<(&str, Graph)> = vec![
        ("complete_64", Graph::complete(64)),
        ("random_6_regular_64", Graph::random_regular(64, 6, &mut rng)),
        ("hypercube_6", Graph::hypercube(6)),
        ("torus_8x8", Graph::torus(8, 8)),
        ("pref_attach_64_m3", Graph::preferential_attachment(64, 3, &mut rng)),
        ("binary_tree_63", Graph::binary_tree(63)),
        ("cycle_63", Graph::cycle(63)),
        ("lollipop_32_32", Graph::lollipop(32, 32)),
    ];

    let mut table = Table::new(vec!["graph", "spectral gap", "mean T^1_C", "gap × T"]);
    let mut rows: Vec<(String, f64, f64, bool)> = Vec::new();
    for (gi, (name, g)) in graphs.iter().enumerate() {
        let gap = spectral_gap_estimate(g, 800);
        // Bipartite graphs cannot reach one walk; target 2 there instead.
        let bipartite = matches!(*name, "hypercube_6" | "torus_8x8" | "binary_tree_63");
        let k = if bipartite { 2 } else { 1 };
        let g2 = g.clone();
        let times = run_trials(trials, 4000 + gi as u64, move |_t, s| {
            let mut rng = Pcg64::seed_from_u64(s);
            coalescence_time(&g2, k, 50_000_000, &mut rng).expect("coalesces")
        });
        let mean = Summary::of_counts(&times).mean();
        rows.push((name.to_string(), gap, mean, bipartite));
        table.row(vec![name.to_string(), fmt_f64(gap), fmt_f64(mean), fmt_f64(gap * mean)]);
    }
    println!("{table}");
    println!("(bipartite graphs — hypercube, even torus, tree — are measured to k = 2");
    println!(" walks, since synchronous walks at odd distance never meet)");

    // Shape check among the k = 1 (non-bipartite) rows: expanders
    // (gap > 0.2) beat the slow-mixers (gap < 0.02) by a wide margin.
    // (Bipartite rows target k = 2 and are not comparable.)
    let comparable: Vec<_> = rows.iter().filter(|r| !r.3).collect();
    let fast: Vec<_> = comparable.iter().filter(|r| r.1 > 0.2).collect();
    let slow: Vec<_> = comparable.iter().filter(|r| r.1 < 0.02).collect();
    let fast_max = fast.iter().map(|r| r.2).fold(0.0f64, f64::max);
    let slow_min = slow.iter().map(|r| r.2).fold(f64::INFINITY, f64::min);
    let ordering = !fast.is_empty() && !slow.is_empty() && fast_max * 3.0 < slow_min;
    verdict(
        "E18",
        "high-spectral-gap graphs coalesce decisively faster than slow-mixing ones (CEOR13 shape)",
        ordering,
    );
}
