//! E8 — Footnote 2: 2-Choices and 3-Majority have *identical* expectation
//! `E[x_i'] = x_i² + (1 − Σ x_j²)·x_i`, even though their consensus times
//! separate polynomially (E3).
//!
//! Checks the identity exactly (analytically, over random configurations)
//! and empirically (simulated one-round means of both processes coincide).

use rand::SeedableRng;
use symbreak_bench::{scaled_trials, section, verdict};
use symbreak_core::dominance::random_configuration;
use symbreak_core::rules::{ThreeMajority, TwoChoices};
use symbreak_core::{Configuration, ExpectedUpdate, VectorStep};
use symbreak_sim::rng::Pcg64;
use symbreak_sim::run_trials;
use symbreak_stats::table::fmt_f64;
use symbreak_stats::{Summary, Table};

fn main() {
    println!("# E8: 2-Choices and 3-Majority agree in expectation (footnote 2)");

    section("Analytic identity over random configurations");
    let mut rng = Pcg64::seed_from_u64(61);
    let mut max_diff = 0.0f64;
    let configs = 5_000;
    for _ in 0..configs {
        let c = random_configuration(997, 12, &mut rng);
        let e2 = TwoChoices.expected_fractions(&c);
        let e3 = ThreeMajority.expected_fractions(&c);
        for (a, b) in e2.iter().zip(&e3) {
            max_diff = max_diff.max((a - b).abs());
        }
    }
    println!("max |E_2C − E_3M| over {configs} random configurations: {max_diff:.2e}");
    let analytic_ok = max_diff < 1e-12;

    section("Empirical one-round means (n = 600)");
    let start = Configuration::from_counts(vec![300, 200, 100]);
    let trials = scaled_trials(20_000);
    let mean_of = |two_choices: bool, seed: u64| -> Vec<f64> {
        let start = start.clone();
        let sums = run_trials(trials, seed, move |_t, s| {
            let mut rng = Pcg64::seed_from_u64(s);
            let next = if two_choices {
                TwoChoices.vector_step(&start, &mut rng)
            } else {
                ThreeMajority.vector_step(&start, &mut rng)
            };
            next.counts().to_vec()
        });
        (0..3)
            .map(|i| Summary::of_counts(&sums.iter().map(|c| c[i]).collect::<Vec<_>>()).mean())
            .collect()
    };
    let m2 = mean_of(true, 62);
    let m3 = mean_of(false, 63);
    let expect = TwoChoices.expected_fractions(&start);
    let mut table = Table::new(vec!["color", "n·E[x']", "2-Choices mean", "3-Majority mean"]);
    let mut empirical_ok = true;
    for i in 0..3 {
        let e = 600.0 * expect[i];
        // Generous 5-sigma-ish window.
        let tol = 5.0 * (600.0 * expect[i] * (1.0 - expect[i]) / trials as f64).sqrt() + 1e-9;
        empirical_ok &= (m2[i] - e).abs() < tol && (m3[i] - e).abs() < tol;
        table.row(vec![i.to_string(), fmt_f64(e), fmt_f64(m2[i]), fmt_f64(m3[i])]);
    }
    println!("{table}");
    println!("(contrast with E3: identical expectations, polynomially separated consensus times)");

    verdict(
        "E8",
        "E[2-Choices] == E[3-Majority] == x² + (1 − ‖x‖²)x, analytically and empirically",
        analytic_ok && empirical_ok,
    );
}
