//! E13 — Section 1.1's motivating contrast: Voter cannot exploit bias.
//! Even from a configuration with *linear* bias, Voter needs Θ(n) rounds,
//! while the drift processes (2-Choices, 3-Majority) finish in
//! polylogarithmic time.

use symbreak_bench::{consensus_times, scaled_trials, section, verdict, HeadlineRule};
use symbreak_core::Configuration;
use symbreak_stats::table::fmt_f64;
use symbreak_stats::{fit_power_law, Summary, Table};

fn main() {
    println!("# E13: Voter ignores bias; 2-Choices and 3-Majority exploit it (Section 1.1)");
    let trials = scaled_trials(20);
    let sizes: Vec<u64> = (8..=13).map(|e| 1u64 << e).collect();

    section("Consensus time from a 2-color configuration with bias n/2 (75/25 split)");
    let mut table = Table::new(vec!["n", "Voter mean", "2-Choices mean", "3-Majority mean"]);
    let mut xs = Vec::new();
    let mut yv = Vec::new();
    let mut y2 = Vec::new();
    let mut y3 = Vec::new();
    for (i, &n) in sizes.iter().enumerate() {
        let start = Configuration::from_counts(vec![3 * n / 4, n / 4]);
        let tv = Summary::of_counts(&consensus_times(
            HeadlineRule::Voter,
            &start,
            trials,
            2300 + i as u64,
        ));
        let t2 = Summary::of_counts(&consensus_times(
            HeadlineRule::TwoChoices,
            &start,
            trials,
            2400 + i as u64,
        ));
        let t3 = Summary::of_counts(&consensus_times(
            HeadlineRule::ThreeMajority,
            &start,
            trials,
            2500 + i as u64,
        ));
        xs.push(n as f64);
        yv.push(tv.mean());
        y2.push(t2.mean());
        y3.push(t3.mean());
        table.row(vec![n.to_string(), fmt_f64(tv.mean()), fmt_f64(t2.mean()), fmt_f64(t3.mean())]);
    }
    println!("{table}");

    let fv = fit_power_law(&xs, &yv);
    let f2 = fit_power_law(&xs, &y2);
    let f3 = fit_power_law(&xs, &y3);
    println!(
        "fitted exponents — Voter: {:.3}, 2-Choices: {:.3}, 3-Majority: {:.3}",
        fv.exponent, f2.exponent, f3.exponent
    );
    println!("paper: Voter Θ(n) even with linear bias; drift processes are polylog here");

    verdict(
        "E13",
        "Voter scales near-linearly with n despite linear bias; the drift processes barely grow",
        fv.exponent > 0.8 && f2.exponent < 0.3 && f3.exponent < 0.3,
    );
}
