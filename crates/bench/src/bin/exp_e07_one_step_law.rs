//! E7 — Equation (2) / Section 2.2: the one-step law of an AC-process is
//! `Mult(n, α(c))`.
//!
//! For 3-Majority and Voter, compares (a) the agent-level engine — each
//! node literally pulls samples and applies its rule — against (b) a
//! single multinomial draw from the analytic process function. The
//! per-color marginal distributions must agree (two-sample KS below
//! threshold) and the empirical means must match `n·α_i(c)`.

use symbreak_bench::{scaled_trials, section, verdict};
use symbreak_core::rules::{alpha_three_majority, ThreeMajority, ThreeMajorityAlt, Voter};
use symbreak_core::{AgentEngine, Configuration, Engine, UpdateRule, VectorStep};
use symbreak_sim::run_trials;
use symbreak_stats::ecdf::ks_threshold;
use symbreak_stats::table::fmt_f64;
use symbreak_stats::{StochasticOrder, Summary, Table};

fn one_round_supports<R>(rule: R, start: &Configuration, trials: u64, seed: u64) -> Vec<Vec<u64>>
where
    R: UpdateRule + Clone + Send + Sync,
{
    let start = start.clone();
    run_trials(trials, seed, move |_t, s| {
        let mut engine = AgentEngine::new(rule.clone(), &start, s);
        engine.step();
        engine.configuration().counts().to_vec()
    })
}

fn one_round_vector<R>(rule: R, start: &Configuration, trials: u64, seed: u64) -> Vec<Vec<u64>>
where
    R: VectorStep + Clone + Send + Sync,
{
    let start = start.clone();
    run_trials(trials, seed, move |_t, s| {
        use rand::SeedableRng;
        let mut rng = symbreak_sim::rng::Pcg64::seed_from_u64(s);
        rule.vector_step(&start, &mut rng).counts().to_vec()
    })
}

fn main() {
    println!("# E7: the AC one-step law — agent simulation vs Mult(n, α(c))");
    let trials = scaled_trials(4_000);
    let start = Configuration::from_counts(vec![200, 150, 100, 50, 12]);
    let n = start.n();

    section("3-Majority: per-color marginals, agent engine vs multinomial law");
    let agent = one_round_supports(ThreeMajority, &start, trials, 1100);
    let vector = one_round_vector(ThreeMajority, &start, trials, 1200);
    let alpha = alpha_three_majority(&start);
    let mut table = Table::new(vec![
        "color",
        "n·alpha_i",
        "agent mean",
        "mult mean",
        "KS(agent, mult)",
        "KS threshold",
    ]);
    let mut all_ok = true;
    let threshold = ks_threshold(trials as usize, trials as usize, 1.63);
    for i in 0..start.num_slots() {
        let a: Vec<u64> = agent.iter().map(|c| c[i]).collect();
        let v: Vec<u64> = vector.iter().map(|c| c[i]).collect();
        let ks = StochasticOrder::test_counts(&a, &v).ks;
        let expect = n as f64 * alpha[i];
        let ma = Summary::of_counts(&a);
        let mv = Summary::of_counts(&v);
        // 5-sigma check on both means against n·alpha.
        let sd = (n as f64 * alpha[i] * (1.0 - alpha[i]) / trials as f64).sqrt();
        let means_ok = (ma.mean() - expect).abs() < 5.0 * sd + 1e-9
            && (mv.mean() - expect).abs() < 5.0 * sd + 1e-9;
        let ks_ok = ks < threshold;
        all_ok &= means_ok && ks_ok;
        table.row(vec![
            i.to_string(),
            fmt_f64(expect),
            fmt_f64(ma.mean()),
            fmt_f64(mv.mean()),
            fmt_f64(ks),
            fmt_f64(threshold),
        ]);
    }
    println!("{table}");

    section("Reformulated 3-Majority (2-Choices + Voter fallback) is the same process");
    let alt = one_round_supports(ThreeMajorityAlt, &start, trials, 1300);
    let mut alt_ok = true;
    for i in 0..start.num_slots() {
        let a: Vec<u64> = alt.iter().map(|c| c[i]).collect();
        let d: Vec<u64> = agent.iter().map(|c| c[i]).collect();
        let ks = StochasticOrder::test_counts(&a, &d).ks;
        alt_ok &= ks < threshold;
    }
    println!("max per-color KS(direct, reformulated) below threshold: {alt_ok}");

    section("Voter sanity: agent engine vs Mult(n, c/n)");
    let va = one_round_supports(Voter, &start, trials, 1400);
    let vv = one_round_vector(Voter, &start, trials, 1500);
    let mut voter_ok = true;
    for i in 0..start.num_slots() {
        let a: Vec<u64> = va.iter().map(|c| c[i]).collect();
        let v: Vec<u64> = vv.iter().map(|c| c[i]).collect();
        voter_ok &= StochasticOrder::test_counts(&a, &v).ks < threshold;
    }
    println!("all Voter marginals match: {voter_ok}");

    verdict(
        "E7",
        "agent-level rounds are distributed as Mult(n, α(c)) for the AC-processes (Eq. (1)/(2))",
        all_ok && alt_ok && voter_ok,
    );
}
