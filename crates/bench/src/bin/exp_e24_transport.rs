//! E24 — the transport layer: channel vs socket shard fleets, measured
//! bytes/round against the ARCHITECTURE.md cost model.
//!
//! PR 8 moved every shard↔shard and shard↔coordinator message onto a
//! versioned byte codec behind a `Transport` trait, with two backends:
//! `ChannelTransport` (in-process mpsc, the default — counts frame
//! lengths without serializing) and `SocketTransport` (one OS process
//! per shard over Unix domain sockets, actually writing the frames).
//! Because the RNG streams and protocol logic live in shard code
//! generic over the transport and the codec consumes no randomness,
//! the two backends replay the *identical* trajectory per seed — and
//! the channel backend's counted bytes must equal the socket backend's
//! written bytes.
//!
//! Three checks gate the verdict:
//!
//! 1. **Crossval** (Part A, `k = n` singleton start) — Voter and
//!    3-Majority fleets over disjoint seed sets on the two backends
//!    must agree distributionally (Welch 5σ on surviving colors at a
//!    fixed horizon), and one same-seed pair is pinned byte-exact
//!    (trace digest, wire entries, and wire bytes all equal).
//! 2. **Push-gear flatness** (Part B) — in the concentrated push gear
//!    the per-round wire traffic is `O(#shards² · #distinct)` frames of
//!    histogram palettes, independent of `n`: bytes/round must sit in a
//!    narrow band while `n` sweeps two orders of magnitude, and the
//!    socket fleet must reproduce the channel fleet's bytes exactly.
//! 3. **Histogram-compression crossover** (Part C) — a serving shard
//!    switches from raw palettes (`count` entries) to the histogram
//!    walk (`O(#distinct)` entries) exactly when
//!    `count ≥ 24·#distinct`; a skewed start whose shard-0 slab holds
//!    `d₀` colors must get cheaper rounds precisely in the cells the
//!    crossover predicts walkable.
//!
//! `SYMBREAK_TRANSPORT=channel|unix` selects the comparison backend
//! (`unix` is the default; `channel` — or a missing worker binary —
//! degrades to channel-vs-channel with a note). `SYMBREAK_SCALE`
//! scales `n`; the CI smoke runs `SYMBREAK_SCALE=0.04096`.

use std::path::PathBuf;

use symbreak_bench::{scale, scaled_trials, section, verdict};
use symbreak_core::rules::{ThreeMajority, TwoChoices, Voter};
use symbreak_core::{Configuration, UpdateRule};
use symbreak_runtime::{Cluster, ClusterConfig, HorizonOutcome, SocketConfig};
use symbreak_stats::table::fmt_f64;
use symbreak_stats::{Summary, Table};

/// Shard count for every fleet in this experiment.
const SHARDS: usize = 4;

/// Raw-vs-walk palette crossover (mirrors `Worker::build_palette`).
const WALK_FACTOR: u64 = 24;

/// The backend the "treatment" arm runs on.
enum Backend {
    /// A real multi-process fleet over Unix domain sockets.
    Unix(SocketConfig),
    /// Channel-vs-channel fallback, with the reason it degraded.
    Channel(String),
}

/// Locates the `symbreak_shard_worker` binary next to this experiment
/// binary (both live in the same cargo target directory), honouring
/// the `SYMBREAK_SHARD_WORKER` override.
fn find_worker() -> Option<PathBuf> {
    if let Ok(p) = std::env::var("SYMBREAK_SHARD_WORKER") {
        let p = PathBuf::from(p);
        return p.is_file().then_some(p);
    }
    let name = format!("symbreak_shard_worker{}", std::env::consts::EXE_SUFFIX);
    let exe = std::env::current_exe().ok()?;
    let mut dir = exe.parent();
    for _ in 0..3 {
        let d = dir?;
        let cand = d.join(&name);
        if cand.is_file() {
            return Some(cand);
        }
        dir = d.parent();
    }
    None
}

fn backend() -> Backend {
    match std::env::var("SYMBREAK_TRANSPORT").as_deref() {
        Ok("channel") => Backend::Channel("SYMBREAK_TRANSPORT=channel".into()),
        _ => match find_worker() {
            Some(worker) => {
                Backend::Unix(SocketConfig { worker: Some(worker), ..SocketConfig::default() })
            }
            None => {
                Backend::Channel("worker binary not found (cargo build --release first)".into())
            }
        },
    }
}

/// Runs one fleet on the treatment backend.
fn run_treatment<R>(
    backend: &Backend,
    rule: R,
    start: &Configuration,
    config: ClusterConfig,
    rounds: u64,
) -> HorizonOutcome
where
    R: symbreak_runtime::WireRule + Clone + Send + Sync + 'static,
{
    match backend {
        Backend::Unix(cfg) => Cluster::new(rule, start, config).run_horizon_socket(rounds, cfg),
        Backend::Channel(_) => Cluster::new(rule, start, config).run_horizon(rounds),
    }
}

/// Order-sensitive digest of a per-round trace (round, colors, support,
/// bias), for byte-exactness pins.
fn trace_digest(trace: &symbreak_sim::trace::Trace) -> u64 {
    let mut acc = 0u64;
    for r in trace.rounds() {
        acc = acc
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(r.round)
            .wrapping_add((r.num_colors as u64) << 20)
            .wrapping_add(r.max_support << 40)
            .wrapping_add(r.bias);
    }
    acc
}

/// Part A: distributional crossval at the `k = n` singleton start, plus
/// one same-seed byte-exactness pin. Returns the pass flag.
fn part_a(backend: &Backend, n: u64, horizon: u64, trials: u64) -> bool {
    section(&format!(
        "A: channel-vs-{} crossval, k = n = {n} singletons, horizon {horizon}, {trials} \
         trials/arm",
        match backend {
            Backend::Unix(_) => "socket",
            Backend::Channel(_) => "channel",
        }
    ));
    let start = Configuration::singletons(n);
    let mut table =
        Table::new(vec!["rule", "channel colors", "treatment colors", "tol (5σ)", "within"]);
    let mut ok = true;

    // Welch on the surviving-color count at the horizon. Consensus
    // rounds are out of reach from k = n at this scale (Voter needs
    // Θ(n) rounds), so the horizon statistic is the comparable law.
    fn colors_after<R>(rule: &R, start: &Configuration, horizon: u64, seed: u64) -> u64
    where
        R: symbreak_runtime::WireRule + Clone + Send + Sync + 'static,
    {
        Cluster::new(rule.clone(), start, ClusterConfig::new(SHARDS, seed))
            .run_horizon(horizon)
            .final_config
            .num_colors() as u64
    }
    fn colors_after_treatment<R>(
        backend: &Backend,
        rule: &R,
        start: &Configuration,
        horizon: u64,
        seed: u64,
    ) -> u64
    where
        R: symbreak_runtime::WireRule + Clone + Send + Sync + 'static,
    {
        run_treatment(backend, rule.clone(), start, ClusterConfig::new(SHARDS, seed), horizon)
            .final_config
            .num_colors() as u64
    }

    macro_rules! crossval {
        ($name:expr, $rule:expr) => {{
            let chan: Vec<u64> =
                (0..trials).map(|t| colors_after(&$rule, &start, horizon, 4200 + t)).collect();
            let treat: Vec<u64> = (0..trials)
                .map(|t| colors_after_treatment(backend, &$rule, &start, horizon, 4300 + t))
                .collect();
            let c = Summary::of_counts(&chan);
            let s = Summary::of_counts(&treat);
            let tol = 5.0 * (c.std_err().powi(2) + s.std_err().powi(2)).sqrt() + 0.5;
            let within = (c.mean() - s.mean()).abs() < tol;
            ok &= within;
            table.row(vec![
                $name.to_string(),
                fmt_f64(c.mean()),
                fmt_f64(s.mean()),
                fmt_f64(tol),
                within.to_string(),
            ]);
        }};
    }
    crossval!("Voter", Voter);
    crossval!("3-Majority", ThreeMajority);
    println!("{table}");

    // The stronger pinned claim on one shared seed: identical
    // trajectory, identical wire entries, and — the tentpole — the
    // channel backend's counted frame lengths equal the socket
    // backend's actually-written bytes.
    let config = || ClusterConfig::new(SHARDS, 4242);
    let chan = Cluster::new(ThreeMajority, &start, config()).run_horizon(horizon.min(8));
    let treat = run_treatment(backend, ThreeMajority, &start, config(), horizon.min(8));
    let exact = trace_digest(&chan.trace) == trace_digest(&treat.trace)
        && chan.total_messages == treat.total_messages
        && chan.wire_bytes == treat.wire_bytes
        && chan.wire_bytes > 0;
    ok &= exact;
    println!(
        "same-seed pin (3-Majority, seed 4242): trace/entries/bytes {} ({} wire bytes, {} \
         entries over {} rounds)",
        if exact { "identical" } else { "DIVERGED" },
        chan.wire_bytes,
        chan.total_messages,
        chan.rounds_run
    );
    ok
}

/// Part B: push-gear bytes/round must be flat while `n` sweeps two
/// orders of magnitude, and the socket fleet's written bytes must equal
/// the channel fleet's counted bytes. Returns the pass flag.
fn part_b(backend: &Backend, n_max: u64, horizon: u64) -> bool {
    const COLORS: usize = 64;
    section(&format!(
        "B: push-gear bytes/round across n = {}..{n_max} (uniform k = {COLORS}, horizon \
         {horizon})",
        n_max / 100
    ));
    let sizes = [n_max / 100, n_max / 10, n_max];
    let mut table = Table::new(vec![
        "n",
        "rounds",
        "wire bytes",
        "bytes/round",
        "entries/round",
        "model S²·(d+1)",
    ]);
    let mut per_round = Vec::new();
    let mut smallest: Option<HorizonOutcome> = None;
    for (i, &n) in sizes.iter().enumerate() {
        let start = Configuration::uniform(n, COLORS);
        let out = Cluster::new(ThreeMajority, &start, ClusterConfig::new(SHARDS, 3100 + i as u64))
            .run_horizon(horizon);
        let bpr = out.wire_bytes as f64 / out.rounds_run as f64;
        per_round.push(bpr);
        table.row(vec![
            n.to_string(),
            out.rounds_run.to_string(),
            out.wire_bytes.to_string(),
            fmt_f64(bpr),
            fmt_f64(out.total_messages as f64 / out.rounds_run as f64),
            ((SHARDS * SHARDS) * (COLORS + 1)).to_string(),
        ]);
        if i == 0 {
            smallest = Some(out);
        }
    }
    println!("{table}");

    // The band: palette entry counts are n-independent by construction
    // (S² histograms of ≤ d+1 entries); only the varint widths of the
    // counts grow with n, so allow a loose band around flat.
    let band = per_round.iter().cloned().fold(f64::MIN, f64::max)
        / per_round.iter().cloned().fold(f64::MAX, f64::min);
    let flat = band <= 1.5;
    println!(
        "bytes/round band over a {}x n sweep: {:.2}x (varint widths only; 1.5x allowed)",
        sizes[2] / sizes[0],
        band
    );

    // Socket parity at the smallest size: the counted bytes are the
    // written bytes.
    let chan = smallest.expect("smallest size ran");
    let start = Configuration::uniform(sizes[0], COLORS);
    let treat =
        run_treatment(backend, ThreeMajority, &start, ClusterConfig::new(SHARDS, 3100), horizon);
    let parity = treat.wire_bytes == chan.wire_bytes;
    println!(
        "socket parity at n = {}: {} ({} vs {} bytes)",
        sizes[0],
        if parity { "exact" } else { "DIVERGED" },
        treat.wire_bytes,
        chan.wire_bytes
    );
    flat && parity
}

/// Part C: the raw→walk palette crossover. Shard 0's slab holds `d0`
/// colors while the rest of the fleet stays fully diverse (pinning the
/// pull gear); the serving shard walks its histogram exactly when the
/// per-batch draw count clears `24·#distinct`. Returns the pass flag.
fn part_c(n: u64, rule_h: u64) -> bool {
    // Expected per-batch draw count served by shard 0: each requester
    // splits its local_n·h pulls uniformly over node ranges, so shard
    // 0's slab (n/S nodes) receives (n/S)·h/S from each of S peers.
    let m = n * rule_h / (SHARDS as u64 * SHARDS as u64);
    let d_star = m / WALK_FACTOR;
    section(&format!(
        "C: histogram-compression crossover, n = {n}, per-batch count m = {m}, crossover \
         #distinct = m/24 = {d_star}"
    ));

    // Skewed starts: colors lay out in ascending slot order and shards
    // own contiguous node ranges, so the first n/S agents — shard 0's
    // slab, concentrated into d0 colors — land on shard 0 while the
    // rest stay singletons (keeping the *global* occupancy diverse
    // enough that the fleet never leaves the pull gear).
    let slab = n / SHARDS as u64;
    let rest = n - slab;
    let skewed = |d0: u64| {
        let mut counts = Vec::with_capacity(d0 as usize + rest as usize);
        let (per, extra) = (slab / d0, slab % d0);
        for i in 0..d0 {
            counts.push(per + if i < extra { 1 } else { 0 });
        }
        counts.extend(std::iter::repeat_n(1u64, rest as usize));
        Configuration::from_counts(counts)
    };

    let mut table = Table::new(vec!["d0", "predicted", "wire bytes (1 round)", "vs diverse"]);
    let diverse =
        Cluster::new(TwoChoices, &Configuration::singletons(n), ClusterConfig::new(SHARDS, 77))
            .run_horizon(1)
            .wire_bytes;
    let mut walk_max = 0u64;
    let mut raw_min = u64::MAX;
    let mut ok = true;
    // Cells a factor ≥ 2 from the boundary on each side, so the
    // multinomial jitter of the realized batch counts cannot flip the
    // predicted sampler.
    for &(d0, predicted_walk) in &[
        ((d_star / 8).max(1), true),
        ((d_star / 2).max(1), true),
        (d_star * 2, false),
        (d_star * 8, false),
    ] {
        let start = skewed(d0);
        let out = Cluster::new(TwoChoices, &start, ClusterConfig::new(SHARDS, 77)).run_horizon(1);
        // Sanity: the crossover prediction from the *actual* local
        // distinct count (+1 for the shard-local `d` convention).
        assert_eq!(
            predicted_walk,
            m >= WALK_FACTOR * (d0 + 1),
            "cell d0 = {d0} sits too close to the boundary"
        );
        if predicted_walk {
            walk_max = walk_max.max(out.wire_bytes);
        } else {
            raw_min = raw_min.min(out.wire_bytes);
        }
        table.row(vec![
            d0.to_string(),
            if predicted_walk { "walk" } else { "raw" }.to_string(),
            out.wire_bytes.to_string(),
            fmt_f64(out.wire_bytes as f64 / diverse as f64),
        ]);
    }
    println!("{table}");
    println!("fully diverse baseline (all raw): {diverse} bytes");

    // Every predicted-walk cell must come in clearly under every
    // predicted-raw cell — shard 0's four palettes collapse from ~m
    // entries each to ~d0 — and the raw cells must track the diverse
    // baseline (the crossover declines to walk, so nothing compresses).
    ok &= walk_max < raw_min;
    ok &= raw_min as f64 >= 1.10 * walk_max as f64;
    // Raw cells track the diverse baseline loosely: their palettes do
    // not compress, but shard 0's *report* still shrinks with d0.
    ok &= (raw_min as f64 / diverse as f64 - 1.0).abs() < 0.25;
    println!(
        "walk cells ≤ {walk_max} bytes < raw cells ≥ {raw_min} bytes ({:.2}x separation)",
        raw_min as f64 / walk_max as f64
    );
    ok
}

fn main() {
    let backend = backend();
    match &backend {
        Backend::Unix(cfg) => println!(
            "# E24: transport layer (socket backend: unix, worker: {})",
            cfg.worker.as_deref().map(|p| p.display().to_string()).unwrap_or_default()
        ),
        Backend::Channel(reason) => {
            println!("# E24: transport layer (channel-vs-channel fallback: {reason})")
        }
    }

    let n_a = ((100_000.0 * scale()).round() as u64).max(2048);
    let a_ok = part_a(&backend, n_a, 24, scaled_trials(5));

    let n_max = ((10_000_000.0 * scale()).round() as u64).max(262_144);
    let b_ok = part_b(&backend, n_max, 12);

    let n_c = (((100_000.0 * scale()).round() as u64).max(16_384) / SHARDS as u64) * SHARDS as u64;
    let c_ok = part_c(n_c, TwoChoices.sample_count() as u64);

    verdict(
        "E24",
        "socket fleets replay channel fleets (Welch 5σ distributionally, byte-exact per \
         seed), push-gear bytes/round is independent of n, and palette bytes compress \
         exactly where count >= 24·#distinct licenses the histogram walk",
        a_ok && b_ok && c_ok,
    );
}
