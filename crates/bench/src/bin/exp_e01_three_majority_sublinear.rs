//! E1 — Theorem 1/4: 3-Majority reaches consensus from the n-color
//! configuration in `O(n^{3/4} log^{7/8} n)` rounds w.h.p.
//!
//! Regenerates the consensus-time-vs-n series, fits the growth exponent in
//! log–log space, and compares each point against the bound curve. PASS
//! requires (a) a clearly sublinear fitted exponent and (b) every measured
//! mean below the bound curve (the paper's constant is ≥ 1, so constant 1
//! suffices empirically).

use symbreak_bench::{consensus_times, scaled_trials, section, verdict, HeadlineRule};
use symbreak_core::theory::theorem4_bound;
use symbreak_core::Configuration;
use symbreak_stats::table::fmt_f64;
use symbreak_stats::{fit_power_law, Summary, Table};

fn main() {
    println!("# E1: 3-Majority is unconditionally sublinear (Theorem 4)");
    let trials = scaled_trials(20);
    let sizes: Vec<u64> = (10..=16).map(|e| 1u64 << e).collect();

    section("Consensus time from the n-color (singletons) configuration");
    let mut table = Table::new(vec![
        "n",
        "trials",
        "mean rounds",
        "p95 rounds",
        "bound n^(3/4)log^(7/8)n",
        "mean/bound",
    ]);
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    let mut all_below_bound = true;
    for (i, &n) in sizes.iter().enumerate() {
        let start = Configuration::singletons(n);
        let times = consensus_times(HeadlineRule::ThreeMajority, &start, trials, 100 + i as u64);
        let s = Summary::of_counts(&times);
        let bound = theorem4_bound(n);
        all_below_bound &= s.quantile(0.95) < bound;
        xs.push(n as f64);
        ys.push(s.mean());
        table.row(vec![
            n.to_string(),
            trials.to_string(),
            fmt_f64(s.mean()),
            fmt_f64(s.quantile(0.95)),
            fmt_f64(bound),
            fmt_f64(s.mean() / bound),
        ]);
    }
    println!("{table}");

    let fit = fit_power_law(&xs, &ys);
    println!(
        "fitted growth: T(n) ≈ {:.3} · n^{:.3}   (R² = {:.4})",
        fit.constant, fit.exponent, fit.r_squared
    );
    println!("paper shape:   T(n) = O(n^0.75 · log^0.875 n)");

    // The log factor inflates the apparent exponent slightly; anything
    // clearly below 0.9 is sublinear with margin at these sizes.
    let sublinear = fit.exponent < 0.9;
    verdict(
        "E1",
        "3-Majority consensus time grows sublinearly (exponent ≈ 3/4) and stays below the Theorem-4 curve",
        sublinear && all_below_bound,
    );
}
