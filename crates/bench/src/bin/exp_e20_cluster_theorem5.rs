//! E20 — Theorem 5 at system scale: the `Ω(n / log n)` lower-bound
//! horizon for 2-Choices, executed on the *sharded message-passing
//! cluster* (not the single-machine engines) from the `k = n` singleton
//! start, at `n = 10⁶` at full scale.
//!
//! This is the workload the aggregate wire formats exist for. The
//! control plane runs `ReportMode::Delta`: 2-Choices from singletons
//! keeps `Θ(n)` colors alive for the whole horizon (absolute sparse
//! reports would stay `O(local_n)` forever) while only `O(1)` nodes
//! switch opinion per round, so the coordinator flips the fleet to
//! signed-delta reports and the per-round report size collapses to
//! `O(#changed)`. The data plane defaults to `WireMode::Batched`: one
//! pull batch + one opinion palette per shard pair per round
//! (`O(#pairs · #distinct)` channel entries) instead of the per-entry
//! `2·n·h`; set `SYMBREAK_WIRE=per-entry` for the PR 3 baseline, whose
//! message count the Uniform Pull cost model pins exactly.
//!
//! Regenerates the Theorem-5 claim at scale: from maximal support 1, no
//! color exceeds `ℓ' = max(2, γ·ln n)` within the `n / (γ·ℓ')` horizon
//! w.h.p., and in particular the cluster cannot reach consensus there.
//!
//! `SYMBREAK_SCALE` scales `n` (default 10⁶, floor 4096); the CI smoke
//! runs `SYMBREAK_SCALE=0.004096` for exactly `k = n = 4096` and a
//! ~50-round horizon.

use symbreak_bench::{scale, section, verdict};
use symbreak_core::rules::TwoChoices;
use symbreak_core::theory::{theorem5_horizon, theorem5_support_cap};
use symbreak_core::Configuration;
use symbreak_runtime::{Cluster, ClusterConfig, ReportMode, WireMode};
use symbreak_stats::table::fmt_f64;
use symbreak_stats::Table;

fn main() {
    let wire = match std::env::var("SYMBREAK_WIRE").as_deref() {
        Ok("per-entry") => WireMode::PerEntry,
        _ => WireMode::Batched,
    };
    println!("# E20: Theorem-5 horizon sweep on the cluster (wire: {wire:?}, reports: Delta)");
    let gamma = 3.0;
    let shards = 8;
    let n_max = ((1_000_000.0 * scale()).round() as u64).max(4096);
    let sizes: Vec<u64> = if n_max / 4 >= 4096 { vec![n_max / 4, n_max] } else { vec![n_max] };

    let mut all_capped = true;
    let mut none_converged = true;
    for (i, &n) in sizes.iter().enumerate() {
        let ell_prime = theorem5_support_cap(1, gamma, n);
        let horizon = (theorem5_horizon(n, ell_prime, gamma).floor() as u64).max(4);
        section(&format!(
            "n = k = {n}: support cap ell' = {ell_prime}, horizon n/(γ·ell') = {horizon} rounds"
        ));

        let start = Configuration::singletons(n);
        let config = ClusterConfig::new(shards, 2017 + i as u64)
            .with_report_mode(ReportMode::Delta)
            .with_wire_mode(wire);
        let cluster = Cluster::new(TwoChoices, &start, config);
        let out = cluster.run_horizon(horizon);

        // The support-cap series, at geometrically spaced checkpoints.
        let mut table =
            Table::new(vec!["round", "max support", "colors alive", "alive / n", "report entries"]);
        let rounds = out.trace.rounds();
        let mut checkpoints: Vec<u64> = Vec::new();
        let mut c = 1u64;
        while c < horizon {
            checkpoints.push(c);
            c *= 4;
        }
        checkpoints.push(horizon);
        for cp in checkpoints {
            if let Some(r) = rounds.get(cp as usize - 1) {
                table.row(vec![
                    r.round.to_string(),
                    r.max_support.to_string(),
                    r.num_colors.to_string(),
                    fmt_f64(r.num_colors as f64 / n as f64),
                    out.report_entries[cp as usize - 1].to_string(),
                ]);
            }
        }
        println!("{table}");

        let peak = rounds.iter().map(|r| r.max_support).max().unwrap_or(0);
        let violations = rounds.iter().filter(|r| r.max_support > ell_prime).count();
        all_capped &= violations == 0;
        none_converged &= out.consensus_round.is_none();
        println!(
            "peak support {peak} / cap {ell_prime}; violations {violations}/{}; consensus: {:?}",
            rounds.len(),
            out.consensus_round
        );

        // Message accounting, parameterized by wire mode: per-entry mode
        // pays exactly the Uniform Pull cost model; batched mode must
        // come in under it (each pair's palette carries at most as many
        // entries as the pulls it answers).
        let per_entry_total = out.rounds_run * 2 * n * 2;
        match wire {
            WireMode::PerEntry => {
                assert_eq!(
                    out.total_messages, per_entry_total,
                    "Uniform Pull cost model: 2·n·h messages per round"
                );
                println!(
                    "messages: {} total = {} rounds x 2·n·h (h = 2)",
                    out.total_messages, out.rounds_run
                );
            }
            WireMode::Batched => {
                assert!(
                    out.total_messages < per_entry_total,
                    "batched wire must move fewer entries than the per-entry 2·n·h model \
                     ({} vs {per_entry_total})",
                    out.total_messages
                );
                println!(
                    "messages: {} total vs {} per-entry model = {:.1}x compression",
                    out.total_messages,
                    per_entry_total,
                    per_entry_total as f64 / out.total_messages as f64
                );
            }
        }

        // The transport layer's byte accounting (PR 8): every entry
        // above rides the versioned frame codec, and the channel
        // backend counts the exact frame lengths a socket fleet would
        // write.
        println!(
            "wire bytes: {} total = {:.1}/round ({:.2} bytes/entry)",
            out.wire_bytes,
            out.wire_bytes as f64 / out.rounds_run as f64,
            out.wire_bytes as f64 / out.total_messages as f64
        );

        // The delta control plane: once the process stalls, per-round
        // report entries collapse from O(local_n) to O(#changed).
        let tail = &out.report_entries[out.report_entries.len() / 2..];
        let tail_mean = tail.iter().sum::<u64>() as f64 / tail.len() as f64;
        println!(
            "report entries: {} round-1 (absolute) -> {:.1}/round over the stalled tail \
             (O(#changed), colors alive ~{})",
            out.report_entries[0],
            tail_mean,
            rounds.last().map(|r| r.num_colors).unwrap_or(0)
        );
        assert!(
            tail_mean < n as f64 / 10.0,
            "delta reports should collapse well below O(n) in the stalled regime"
        );
    }

    verdict(
        "E20",
        "on the sharded cluster, 2-Choices respects the Theorem-5 support cap over the \
         Ω(n/log n) horizon and does not reach consensus",
        all_capped && none_converged,
    );
}
