//! E20 — Theorem 5 at system scale: the `Ω(n / log n)` lower-bound
//! horizon for 2-Choices, executed on the *sharded message-passing
//! cluster* (not the single-machine engines) from the `k = n` singleton
//! start, at `n = 10⁶` at full scale.
//!
//! This is the workload the occupancy-aware wire format exists for: the
//! pre-sparse runtime exchanged dense `k`-slot count vectors every round
//! (`O(k)` per shard per round in report traffic alone), which at
//! `k = n = 10⁶` swamps the actual protocol messages. With sparse
//! `(slot, count)` reports the control plane is `O(#locally occupied)`
//! and the coordinator folds reports into one persistent configuration,
//! so the sweep records the support-cap series straight off the `O(1)`
//! cached observables.
//!
//! Regenerates the Theorem-5 claim at scale: from maximal support 1, no
//! color exceeds `ℓ' = max(2, γ·ln n)` within the `n / (γ·ℓ')` horizon
//! w.h.p., and in particular the cluster cannot reach consensus there.
//!
//! `SYMBREAK_SCALE` scales `n` (default 10⁶, floor 4096); the CI smoke
//! runs `SYMBREAK_SCALE=0.004096` for exactly `k = n = 4096` and a
//! ~50-round horizon.

use symbreak_bench::{scale, section, verdict};
use symbreak_core::rules::TwoChoices;
use symbreak_core::theory::{theorem5_horizon, theorem5_support_cap};
use symbreak_core::Configuration;
use symbreak_runtime::{Cluster, ClusterConfig};
use symbreak_stats::table::fmt_f64;
use symbreak_stats::Table;

fn main() {
    println!("# E20: Theorem-5 horizon sweep on the sparse message-passing cluster");
    let gamma = 3.0;
    let shards = 8;
    let n_max = ((1_000_000.0 * scale()).round() as u64).max(4096);
    let sizes: Vec<u64> = if n_max / 4 >= 4096 { vec![n_max / 4, n_max] } else { vec![n_max] };

    let mut all_capped = true;
    let mut none_converged = true;
    for (i, &n) in sizes.iter().enumerate() {
        let ell_prime = theorem5_support_cap(1, gamma, n);
        let horizon = (theorem5_horizon(n, ell_prime, gamma).floor() as u64).max(4);
        section(&format!(
            "n = k = {n}: support cap ell' = {ell_prime}, horizon n/(γ·ell') = {horizon} rounds"
        ));

        let start = Configuration::singletons(n);
        let cluster = Cluster::new(TwoChoices, &start, ClusterConfig::new(shards, 2017 + i as u64));
        let out = cluster.run_horizon(horizon);

        // The support-cap series, at geometrically spaced checkpoints.
        let mut table = Table::new(vec!["round", "max support", "colors alive", "alive / n"]);
        let rounds = out.trace.rounds();
        let mut checkpoints: Vec<u64> = Vec::new();
        let mut c = 1u64;
        while c < horizon {
            checkpoints.push(c);
            c *= 4;
        }
        checkpoints.push(horizon);
        for cp in checkpoints {
            if let Some(r) = rounds.get(cp as usize - 1) {
                table.row(vec![
                    r.round.to_string(),
                    r.max_support.to_string(),
                    r.num_colors.to_string(),
                    fmt_f64(r.num_colors as f64 / n as f64),
                ]);
            }
        }
        println!("{table}");

        let peak = rounds.iter().map(|r| r.max_support).max().unwrap_or(0);
        let violations = rounds.iter().filter(|r| r.max_support > ell_prime).count();
        all_capped &= violations == 0;
        none_converged &= out.consensus_round.is_none();
        println!(
            "peak support {peak} / cap {ell_prime}; violations {violations}/{}; consensus: {:?}",
            rounds.len(),
            out.consensus_round
        );
        assert_eq!(
            out.total_messages,
            out.rounds_run * 2 * n * 2,
            "Uniform Pull cost model: 2·n·h messages per round"
        );
        println!(
            "messages: {} total = {} rounds x 2·n·h (h = 2)",
            out.total_messages, out.rounds_run
        );
    }

    verdict(
        "E20",
        "on the sharded cluster, 2-Choices respects the Theorem-5 support cap over the \
         Ω(n/log n) horizon and does not reach consensus",
        all_capped && none_converged,
    );
}
