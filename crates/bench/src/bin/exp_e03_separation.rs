//! E3 — Theorem 1 (the headline): a polynomial gap between 3-Majority and
//! 2-Choices from the n-color configuration.
//!
//! Both processes have identical expected one-step behaviour (footnote 2,
//! validated by E8), yet their consensus times diverge polynomially: the
//! ratio `T_{2C} / T_{3M}` must grow with n, and the gap in fitted
//! exponents must be clearly positive.

use symbreak_bench::{consensus_times, scaled_trials, section, verdict, HeadlineRule};
use symbreak_core::Configuration;
use symbreak_stats::table::fmt_f64;
use symbreak_stats::{fit_power_law, Summary, Table};

fn main() {
    println!("# E3: the 3-Majority vs 2-Choices separation (Theorem 1)");
    let trials = scaled_trials(15);
    let sizes: Vec<u64> = (8..=13).map(|e| 1u64 << e).collect();

    section("Head-to-head consensus times from the n-color configuration");
    let mut table = Table::new(vec!["n", "3-Majority mean", "2-Choices mean", "ratio 2C/3M"]);
    let mut xs = Vec::new();
    let mut y3 = Vec::new();
    let mut y2 = Vec::new();
    let mut ratios = Vec::new();
    for (i, &n) in sizes.iter().enumerate() {
        let start = Configuration::singletons(n);
        let t3 = Summary::of_counts(&consensus_times(
            HeadlineRule::ThreeMajority,
            &start,
            trials,
            400 + i as u64,
        ));
        let t2 = Summary::of_counts(&consensus_times(
            HeadlineRule::TwoChoices,
            &start,
            trials,
            500 + i as u64,
        ));
        let ratio = t2.mean() / t3.mean();
        ratios.push(ratio);
        xs.push(n as f64);
        y3.push(t3.mean());
        y2.push(t2.mean());
        table.row(vec![n.to_string(), fmt_f64(t3.mean()), fmt_f64(t2.mean()), fmt_f64(ratio)]);
    }
    println!("{table}");

    let fit3 = fit_power_law(&xs, &y3);
    let fit2 = fit_power_law(&xs, &y2);
    println!(
        "3-Majority exponent: {:.3} (R²={:.3});  2-Choices exponent: {:.3} (R²={:.3})",
        fit3.exponent, fit3.r_squared, fit2.exponent, fit2.r_squared
    );
    println!(
        "paper: 3-Majority O(n^{{3/4}} log^{{7/8}} n)  vs  2-Choices Ω(n/log n) — a polynomial gap"
    );

    let ratio_grows = ratios.last().expect("non-empty") > ratios.first().expect("non-empty");
    let exponent_gap = fit2.exponent - fit3.exponent;
    verdict(
        "E3",
        "the 2C/3M consensus-time ratio diverges with n (polynomial exponent gap, 3-Majority wins)",
        ratio_grows && exponent_gap > 0.2,
    );
}
