//! E9 — Appendix B: Lemma 1 cannot prove the h-Majority hierarchy
//! (Conjecture 1), computed in exact rational arithmetic.
//!
//! With `x = (1/2, 1/6, 1/6, 1/6)` and `x̃ = (1/2, 1/2, 0, 0)`:
//! `x̃ ⪰ x`, `α^{(4M)}(x̃) = x̃`, yet `α^{(3M)}(x)₁ = 7/12 > 1/2`
//! (Equation (24)) — so `α^{(4M)}(x̃)` fails to majorize `α^{(3M)}(x)`
//! and the coupling hypothesis collapses.

use symbreak_bench::{section, verdict};
use symbreak_core::counterexample::{appendix_b_report, Rational};
use symbreak_stats::Table;

fn main() {
    println!("# E9: the Appendix-B counterexample, exactly");
    let report = appendix_b_report();

    section("The configurations and process functions (exact rationals)");
    let mut table = Table::new(vec!["vector", "components"]);
    let fmt = |v: &[Rational]| v.iter().map(|r| r.to_string()).collect::<Vec<_>>().join(", ");
    table.row(vec!["x".into(), fmt(&report.x)]);
    table.row(vec!["x̃".into(), fmt(&report.x_tilde)]);
    table.row(vec!["α^(3M)(x)".into(), fmt(&report.alpha_3m)]);
    table.row(vec!["α^(4M)(x̃)".into(), fmt(&report.alpha_4m)]);
    println!("{table}");

    section("The verdict chain");
    println!("x̃ ⪰ x (premise of Lemma 1 with c = x̃, c̃ = x): {}", report.premise_holds);
    println!(
        "α^(4M)(x̃) ⪰ α^(3M)(x) (what the hierarchy proof would need): {}",
        report.conclusion_holds
    );
    println!(
        "witness: α^(3M)(x)₁ = {} = 7/12 > 1/2 = α^(4M)(x̃)₁  (Equation (24))",
        report.alpha_3m[0]
    );

    let seven_twelfths = report.alpha_3m[0] == Rational::new(7, 12);
    let half = report.alpha_4m[0] == Rational::new(1, 2);
    verdict(
        "E9",
        "exact reproduction of Appendix B: premise holds, conclusion fails, α₁ = 7/12 exactly",
        report.premise_holds && !report.conclusion_holds && seven_twelfths && half,
    );
}
