//! E15 — the structure of Theorem 4's proof, measured: the run splits at
//! `n^{1/4} log^{1/8} n` colors into Phase 1 (bounded via the Voter
//! coupling, Lemmas 2+3) and Phase 2 (bounded via Theorem 8), each
//! `O(n^{3/4} log^{7/8} n)`.
//!
//! Reports mean Phase-1/Phase-2 durations per n, checks both stay below
//! the bound, and shows which phase dominates in practice.

use symbreak_bench::{scaled_trials, section, verdict};
use symbreak_core::phases::measure_phases;
use symbreak_core::rules::ThreeMajority;
use symbreak_core::theory::{phase_split_colors, theorem4_bound};
use symbreak_core::{Configuration, VectorEngine};
use symbreak_sim::run_trials;
use symbreak_stats::table::fmt_f64;
use symbreak_stats::{Summary, Table};

fn main() {
    println!("# E15: Theorem 4's phase decomposition, measured");
    let trials = scaled_trials(20);
    let sizes: Vec<u64> = (10..=16).map(|e| 1u64 << e).collect();

    section("Phase durations from the n-color configuration (3-Majority)");
    let mut table = Table::new(vec![
        "n",
        "split colors",
        "mean phase 1",
        "mean phase 2",
        "phase1 share",
        "bound",
    ]);
    let mut all_below = true;
    for (i, &n) in sizes.iter().enumerate() {
        let results = run_trials(trials, 2800 + i as u64, move |_t, s| {
            let start = Configuration::singletons(n);
            let mut e = VectorEngine::new(ThreeMajority, start, s).with_compaction();
            measure_phases(&mut e, n, u64::MAX).expect("uncapped")
        });
        let p1 = Summary::of_counts(&results.iter().map(|p| p.phase1_rounds).collect::<Vec<_>>());
        let p2 = Summary::of_counts(&results.iter().map(|p| p.phase2_rounds).collect::<Vec<_>>());
        let bound = theorem4_bound(n);
        all_below &= p1.max() < bound && p2.max() < bound;
        table.row(vec![
            n.to_string(),
            phase_split_colors(n).to_string(),
            fmt_f64(p1.mean()),
            fmt_f64(p2.mean()),
            fmt_f64(p1.mean() / (p1.mean() + p2.mean())),
            fmt_f64(bound),
        ]);
    }
    println!("{table}");
    println!("(the proof bounds each phase by the same O(n^{{3/4}} log^{{7/8}} n) term;");
    println!(" in practice Phase 1 — killing the first n − n^{{1/4}} colors — dominates)");

    verdict("E15", "both proof phases stay below the Theorem-4 bound at every n", all_below);
}
