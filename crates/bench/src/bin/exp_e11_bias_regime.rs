//! E11 — Section 1.1 / footnote 4: in the *biased* regime the separation
//! vanishes. With bias `Ω(√(n log n))`, both 2-Choices and 3-Majority
//! converge to the initially-largest color in comparable (sublinear) time;
//! the E3 gap is a many-colors/no-bias phenomenon.
//!
//! Sweeps the initial bias in units of `√(n ln n)` for k ∈ {2, 16} and
//! reports, per process: win probability of the planted color and mean
//! consensus time.

use symbreak_bench::{scaled_trials, section, verdict, HeadlineRule};
use symbreak_core::{Configuration, Opinion, RunOptions, VectorEngine};
use symbreak_sim::run_trials;
use symbreak_stats::table::fmt_f64;
use symbreak_stats::{Summary, Table};

fn run_cell(rule: HeadlineRule, start: &Configuration, trials: u64, seed: u64) -> (f64, f64) {
    let start = start.clone();
    let results = run_trials(trials, seed, move |_t, s| {
        // No compaction: color identity matters (we track color 0).
        let mut engine = VectorEngine::new(rule, start.clone(), s);
        let out = symbreak_core::run_to_consensus(
            &mut engine,
            &RunOptions { max_rounds: u64::MAX, record_trace: false },
        );
        let winner = out.winner.expect("consensus reached");
        (winner == Opinion::new(0), out.consensus_round.expect("reached"))
    });
    let wins = results.iter().filter(|r| r.0).count() as f64 / trials as f64;
    let mean = Summary::of_counts(&results.iter().map(|r| r.1).collect::<Vec<_>>()).mean();
    (wins, mean)
}

fn main() {
    println!("# E11: the biased regime — the separation vanishes (Section 1.1)");
    let n: u64 = 16384;
    let trials = scaled_trials(25);
    let unit = ((n as f64) * (n as f64).ln()).sqrt(); // √(n ln n) ≈ 398

    section("Win probability of the planted color and mean consensus time");
    let mut table = Table::new(vec![
        "k",
        "bias/√(n·ln n)",
        "2C win prob",
        "3M win prob",
        "2C mean rounds",
        "3M mean rounds",
        "ratio 2C/3M",
    ]);
    let mut biased_rows: Vec<(f64, f64, f64)> = Vec::new(); // (win2, win3, ratio)
    for (ki, &k) in [2usize, 16].iter().enumerate() {
        for (bi, &mult) in [0.0f64, 1.0, 2.0, 4.0].iter().enumerate() {
            let bias = (mult * unit).round() as u64;
            let start = Configuration::biased(n, k, bias);
            let seed = 1900 + 100 * ki as u64 + 10 * bi as u64;
            let (w2, t2) = run_cell(HeadlineRule::TwoChoices, &start, trials, seed);
            let (w3, t3) = run_cell(HeadlineRule::ThreeMajority, &start, trials, seed + 5);
            if mult >= 2.0 {
                biased_rows.push((w2, w3, t2 / t3));
            }
            table.row(vec![
                k.to_string(),
                fmt_f64(mult),
                fmt_f64(w2),
                fmt_f64(w3),
                fmt_f64(t2),
                fmt_f64(t3),
                fmt_f64(t2 / t3),
            ]);
        }
    }
    println!("{table}");
    println!("(k is small here, so both processes are fast even at bias 0 — the");
    println!(" E3 separation needs *many* colors; what changes with bias is the");
    println!(" planted color's win probability and the shrinking 2C/3M ratio.)");

    // In the clearly-biased cells, both processes must elect the planted
    // color essentially always, and their times must be comparable.
    let all_win = biased_rows.iter().all(|r| r.0 >= 0.95 && r.1 >= 0.95);
    let comparable = biased_rows.iter().all(|r| r.2 < 4.0);
    verdict(
        "E11",
        "with bias ≥ 2√(n ln n) both processes elect the planted color and run in comparable time",
        all_win && comparable,
    );
}
