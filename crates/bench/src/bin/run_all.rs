//! Runs every experiment binary in sequence and summarizes the verdicts.
//!
//! Honours `SYMBREAK_SCALE`; use `SYMBREAK_SCALE=0.25` for a quick smoke
//! sweep. Exits non-zero if any experiment fails or crashes.

use std::process::Command;

const EXPERIMENTS: &[&str] = &[
    "exp_e01_three_majority_sublinear",
    "exp_e02_two_choices_lower_bound",
    "exp_e03_separation",
    "exp_e04_voter_dominates_3m",
    "exp_e05_voter_bound",
    "exp_e06_duality",
    "exp_e07_one_step_law",
    "exp_e08_expectation_identity",
    "exp_e09_counterexample",
    "exp_e10_hierarchy",
    "exp_e11_bias_regime",
    "exp_e12_fault_tolerance",
    "exp_e13_voter_linear",
    "exp_e14_nonac_counterexample",
    "exp_e15_phase_decomposition",
    "exp_e16_lazy_voter",
    "exp_e17_distributed_runtime",
    "exp_e18_topologies",
    "exp_e19_graph_bias",
    "exp_e20_cluster_theorem5",
    "exp_e21_multiset_wire",
    "exp_e22_cluster_faults",
    "exp_e23_condensed_shards",
    "exp_e24_transport",
    "exp_e25_grouped_pull",
    "exp_e26_incremental_rounds",
];

fn main() {
    let exe_dir = std::env::current_exe()
        .expect("current exe path")
        .parent()
        .expect("exe has a parent dir")
        .to_path_buf();
    let mut failures = Vec::new();
    for name in EXPERIMENTS {
        println!("\n================ {name} ================");
        let path = exe_dir.join(name);
        let status = Command::new(&path)
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {}: {e}", path.display()));
        if !status.success() {
            failures.push(*name);
        }
    }
    println!("\n================ SUMMARY ================");
    if failures.is_empty() {
        println!("all {} experiments completed", EXPERIMENTS.len());
    } else {
        println!("failed experiments: {failures:?}");
        std::process::exit(1);
    }
}
