//! E25 — grouped condensed pull gear: per-opinion hypergeometric
//! blocks make condensed pull rounds `O(#occupied · h)`, the same
//! complexity class as the push gear.
//!
//! Before the grouped consume, a condensed shard receiving pull
//! palettes still walked its *nodes*: one multivariate-hypergeometric
//! window split per node off the pooled histogram (`O(local_n · h log
//! d)` with the Fenwick dealer), which is exactly the per-agent cost
//! condensation exists to avoid — the E23 k = n singleton rows sat at
//! 0.18–0.63x against the agent baseline because of it. The grouped
//! consume deals the pool into per-(opinion-group) blocks with nested
//! multivariate hypergeometrics ([`symbreak_sim::dist::GroupSplitter`])
//! and applies each rule's aggregate window law once per occupied
//! group (`MultisetRule::condensed_window_step`), collapsing to a
//! single mega-block call for own-insensitive rules (3-Majority,
//! h-Majority).
//!
//! **Part A** pins the complexity claim: 3-Majority from the uniform
//! `k = 256` start with the data gear *forced* to pull and to push
//! ([`GearMode::ForcePull`] / [`GearMode::ForcePush`] — auto
//! arbitration would flip this start straight to push), swept across
//! two decades of `n` up to 10⁸. Both gears must hold an n-independent
//! flat per-round band — the pull gear could not before this change
//! (its per-round cost was `Θ(n)`).
//!
//! **Part B** pins the payoff where E23 measured the regression: paired
//! same-seed runs from the `k = n` singleton start,
//! `ShardRepr::Histogram` vs `ShardRepr::Agents`, for 3-Majority and
//! 2-Median (Multiset) and Voter (SinglePeer). Each row runs at the
//! population and horizon where its condensation claim lives:
//! 3-Majority at n = 10⁶ over 300 rounds, 2-Median at n = 8·10⁶ to
//! consensus (its margin comes from the pull rounds, which grow with
//! n), and Voter at n = 10⁶ over 2400 rounds (voter occupancy decays
//! like 2n/t, so the condensed win sits in the coalesced tail — a short
//! horizon measures only the crossover region). Every leg is timed
//! twice interleaved and scored by its best per-round time, which
//! cancels both consensus-length luck and machine drift. Every row must
//! now sit at ≥ 1.0x (full scale): the mega-block path carries
//! 3-Majority, the flat Fisher–Yates dealing (O(1) per ball, no Fenwick
//! `log d`) carries the own-sensitive diverse regime, and Voter's
//! palette tally was already node-free.
//!
//! `SYMBREAK_SCALE` scales the largest Part A size (default 10⁸) and
//! the Part B populations (never upscaled — Part B exists to pair
//! against the agent baseline).

use std::time::Instant;

use symbreak_bench::{scale, section, verdict};
use symbreak_core::rules::{ThreeMajority, TwoMedian, Voter};
use symbreak_core::{Configuration, UpdateRule};
use symbreak_runtime::{Cluster, ClusterConfig, GearMode, ShardRepr};
use symbreak_stats::table::fmt_f64;
use symbreak_stats::Table;

const K_COLORS: u64 = 256;
const SHARDS: usize = 8;
const HORIZON_A: u64 = 48;

fn main() {
    println!("# E25: grouped condensed pull — O(#occupied·h) pull rounds, both gears flat in n");

    // ---------------- Part A: forced-gear flat bands ----------------
    let n_max = ((100_000_000.0 * scale()).round() as u64).max(65_536);
    let sizes: Vec<u64> =
        [n_max / 100, n_max / 10, n_max].into_iter().filter(|&n| n >= 65_536).collect();

    section(&format!(
        "Part A: 3-Majority, uniform k = {K_COLORS} start, {SHARDS} shards, forced gears, \
         horizon {HORIZON_A}"
    ));
    let mut table = Table::new(vec!["n", "gear", "rounds run", "us/round", "entries/round"]);
    let mut bands: Vec<(&str, Vec<f64>)> = vec![("pull", Vec::new()), ("push", Vec::new())];
    for (i, &n) in sizes.iter().enumerate() {
        let start = Configuration::uniform(n, K_COLORS as usize);
        for (gear_name, gear, band_idx) in
            [("pull", GearMode::ForcePull, 0usize), ("push", GearMode::ForcePush, 1usize)]
        {
            let config = ClusterConfig::new(SHARDS, 2500 + i as u64).with_data_gear(gear);
            let cluster = Cluster::new(ThreeMajority, &start, config);
            let t = Instant::now();
            let out = cluster.run_horizon(HORIZON_A);
            let secs = t.elapsed().as_secs_f64();
            let us_round = secs * 1e6 / out.rounds_run as f64;
            assert_eq!(out.final_config.n(), n, "mass conserved at n = {n} ({gear_name})");
            bands[band_idx].1.push(us_round);
            table.row(vec![
                n.to_string(),
                gear_name.to_string(),
                out.rounds_run.to_string(),
                fmt_f64(us_round),
                fmt_f64(out.total_messages as f64 / out.rounds_run as f64),
            ]);
        }
    }
    println!("{table}");

    // The claim: per-round cost flat (within allocator/cache noise)
    // while n spans decades, in *both* gears. The pre-grouped pull
    // consume scaled linearly — 100x across this sweep.
    let mut bands_ok = true;
    for (gear_name, band) in &bands {
        if band.len() >= 2 {
            let lo = band.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = band.iter().cloned().fold(0.0, f64::max);
            let flat = hi / lo < 5.0;
            bands_ok &= flat;
            println!(
                "{gear_name} gear band: {:.1}–{:.1} us/round ({:.2}x) while n grows {:.0}x",
                lo,
                hi,
                hi / lo,
                *sizes.last().unwrap() as f64 / sizes[0] as f64
            );
        }
    }

    // ---------------- Part B: the singleton rows, paired ----------------
    // Per-row (population, horizon): each rule is paired where its
    // condensation claim lives (see the module doc). Populations scale
    // down with SYMBREAK_SCALE but never up.
    let n_of = |base: f64| ((base * scale().min(1.0)).round() as u64).max(8_192);
    section(&format!(
        "Part B: paired Histogram vs Agents, k = n singletons, best-of-{REPS} per-round timing"
    ));
    let mut table =
        Table::new(vec!["workload", "access", "n", "condensed ms/r", "agents ms/r", "speedup"]);
    let mut worst_speedup = f64::INFINITY;
    let mut run_pair =
        |name: &str, access: &str, rule: &dyn RunPair, n_b: u64, horizon_b: u64, seed: u64| {
            let start_b = Configuration::singletons(n_b);
            let (c, a, rounds) = rule.run(&start_b, horizon_b, seed);
            let speedup = a / c;
            worst_speedup = worst_speedup.min(speedup);
            table.row(vec![
                format!("{name} ({rounds}r)"),
                access.to_string(),
                n_b.to_string(),
                fmt_f64(c * 1e3),
                fmt_f64(a * 1e3),
                format!("{speedup:.2}x"),
            ]);
        };
    run_pair("3-Majority singletons", "Multiset", &ThreeMajority, n_of(1e6), 300, 4242);
    run_pair("2-Median singletons", "Multiset", &TwoMedian, n_of(8e6), 100, 4243);
    run_pair("Voter singletons", "SinglePeer", &Voter, n_of(1e6), 2_400, 4244);
    println!("{table}");
    println!(
        "worst singleton per-round speedup: {worst_speedup:.2}x (acceptance floor 1.0x at \
         full scale; pre-grouped consume sat at 0.18–0.63x)"
    );

    let enforce = scale() >= 0.999;
    verdict(
        "E25",
        "the grouped condensed pull gear holds an n-independent per-round band in both forced \
         gears across two decades up to n = 1e8, and every k = n singleton pairing now meets or \
         beats the agent baseline",
        bands_ok && (!enforce || worst_speedup >= 1.0),
    );
}

/// Repetitions per leg; every leg is scored by its best per-round time.
const REPS: usize = 2;

/// Object-safe paired runner so the three rules share one closure.
/// Returns (condensed s/round, agents s/round, min rounds run).
trait RunPair {
    fn run(&self, start: &Configuration, horizon: u64, seed: u64) -> (f64, f64, u64);
}

impl<R: UpdateRule + Clone + Send + Sync> RunPair for R {
    fn run(&self, start: &Configuration, horizon: u64, seed: u64) -> (f64, f64, u64) {
        // Interleave the reps (C, A, C, A) so slow drift on a shared box
        // hits both representations alike; best-of-REPS per-round time
        // then cancels scheduler bad luck and consensus-length variance.
        let mut per_round = [f64::INFINITY; 2];
        let mut rounds = [u64::MAX; 2];
        for _ in 0..REPS {
            for (i, repr) in [ShardRepr::Histogram, ShardRepr::Agents].into_iter().enumerate() {
                let config = ClusterConfig::new(SHARDS, seed).with_shard_repr(repr);
                let cluster = Cluster::new(self.clone(), start, config);
                let t = Instant::now();
                let out = cluster.run_horizon(horizon);
                let secs = t.elapsed().as_secs_f64();
                assert_eq!(out.final_config.n(), start.n(), "mass conserved");
                per_round[i] = per_round[i].min(secs / out.rounds_run.max(1) as f64);
                rounds[i] = rounds[i].min(out.rounds_run);
            }
        }
        (per_round[0], per_round[1], rounds[0].min(rounds[1]))
    }
}
