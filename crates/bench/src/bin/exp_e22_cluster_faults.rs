//! E22 — the cluster under injected faults: 3-Majority re-consensus
//! across a drop-rate × crash-count × Byzantine-count sweep on the
//! quorum-relaxed coordinator.
//!
//! Background: the strict runtime (E17/E20/E21) runs a synchronous
//! barrier — every shard's report is required every round, so one lost
//! message wedges the fleet. The fault layer replaces that with an
//! `N − F` quorum (the integer-exact `quorum_threshold` from the
//! adversary crate) plus a deterministic, seeded fault schedule shared
//! by sender, receiver, and coordinator: dropped / duplicated / delayed
//! palettes and reports, crash-stop shards that rejoin from coordinator
//! snapshots, and Byzantine shards whose mass-violating report bodies
//! are rejected at the fold.
//!
//! Three checks gate the verdict:
//!
//! 1. **Inert-plan seed-exactness** — `FaultPlan::none()` must be
//!    byte-identical to the fault-free runtime (same consensus round,
//!    same wire count, same final configuration).
//! 2. **Sweep** — every cell of the drop × crash × Byzantine grid
//!    (faults within the declared tolerance `F`) must re-reach
//!    3-Majority consensus; for crash cells the consensus must land
//!    *after* the last rejoin, and the recovery time (consensus round −
//!    rejoin round) is reported.
//! 3. **Negative control** — crashing more shards than `F` tolerates
//!    must abort with the typed `TooManyFaults` reason, not deadlock
//!    and not fold a minority view.
//!
//! `SYMBREAK_SCALE` scales `n` and the trial counts; the CI smoke runs
//! `SYMBREAK_SCALE=0.04096`.

use symbreak_bench::{scale, scaled_trials, section, verdict};
use symbreak_core::rules::ThreeMajority;
use symbreak_core::Configuration;
use symbreak_runtime::{
    ByzantineSpec, Cluster, ClusterConfig, CorruptionKind, CrashSpec, FaultPlan, StopReason,
};
use symbreak_stats::table::fmt_f64;
use symbreak_stats::{Summary, Table};

/// Shard count: room for two concurrent crash windows plus one
/// Byzantine shard while honest shards stay the majority.
const SHARDS: usize = 6;

/// Opinions in the uniform start configuration.
const COLORS: usize = 8;

/// Round the first crash fires; later crashes stagger by two rounds.
const CRASH_ROUND: u64 = 3;

/// Rounds a crashed shard stays dark before its snapshot rejoin.
const OUTAGE: u64 = 3;

/// Builds the sweep cell's plan: `crashes` staggered crash-rejoin
/// windows on the low shards, `byz` mass-inflating liars on the high
/// shards, palette loss at `drop` across the whole fleet.
fn cell_plan(fault_seed: u64, drop: f64, crashes: usize, byz: usize) -> FaultPlan {
    let mut plan = FaultPlan::none()
        .with_seed(fault_seed)
        .with_palette_rates(drop, 0.0, 0.0)
        .with_max_faulty(crashes + byz);
    for c in 0..crashes {
        let crash_round = CRASH_ROUND + 2 * c as u64;
        plan = plan.with_crash(CrashSpec {
            shard: c,
            crash_round,
            rejoin_round: Some(crash_round + OUTAGE),
        });
    }
    for b in 0..byz {
        plan = plan.with_byzantine(ByzantineSpec {
            shard: SHARDS - 1 - b,
            budget: 5,
            kind: CorruptionKind::Inflate,
        });
    }
    plan
}

fn main() {
    let n = ((20_000.0 * scale()).round() as u64).max(512);
    let trials = scaled_trials(5);
    let start = Configuration::uniform(n, COLORS);
    println!("# E22: cluster fault injection (n = {n}, k = {COLORS}, {SHARDS} shards, {trials} trials/cell)");

    // 1. Inert plan ≡ fault-free runtime, seed-exact.
    section("inert plan seed-exactness");
    let mut inert_ok = true;
    for t in 0..trials {
        let free = Cluster::new(ThreeMajority, &start, ClusterConfig::new(SHARDS, 2200 + t))
            .run_to_consensus(1_000_000)
            .expect("fault-free consensus");
        let inert = Cluster::new(
            ThreeMajority,
            &start,
            ClusterConfig::new(SHARDS, 2200 + t).with_fault_plan(FaultPlan::none()),
        )
        .run_to_consensus(1_000_000)
        .expect("inert-plan consensus");
        // The byte counters (PR 8's transport layer) must agree exactly
        // between the two coordinators; every *fault* counter proper
        // must stay zero.
        let mut inert_faults = inert.faults;
        inert_faults.bytes_sent = 0;
        inert_faults.bytes_received = 0;
        inert_ok &= inert.consensus_round == free.consensus_round
            && inert.total_messages == free.total_messages
            && inert.final_config == free.final_config
            && inert.faults.bytes_sent == free.faults.bytes_sent
            && inert.faults.bytes_sent > 0
            && inert_faults == Default::default();
    }
    println!(
        "FaultPlan::none() vs fault-free over {trials} seeds: {}",
        if inert_ok {
            "identical (round, wire count, wire bytes, final config)"
        } else {
            "DIVERGED"
        }
    );

    // 2. The sweep.
    section("drop-rate x crash x Byzantine sweep (quorum N - F)");
    let mut table = Table::new(vec![
        "drop",
        "crashes",
        "byz",
        "consensus mean",
        "recovery mean",
        "recovered/trial",
        "quorum rounds",
        "rejected",
        "wire MB mean",
    ]);
    let mut sweep_ok = true;
    for &drop in &[0.0, 0.1, 0.25] {
        for &crashes in &[0usize, 1, 2] {
            for &byz in &[0usize, 1] {
                if drop == 0.0 && crashes == 0 && byz == 0 {
                    continue; // the inert cell is phase 1
                }
                let last_rejoin =
                    if crashes > 0 { CRASH_ROUND + 2 * (crashes as u64 - 1) + OUTAGE } else { 0 };
                let mut consensus = Vec::new();
                let mut recovery = Vec::new();
                let mut recovered = Vec::new();
                let mut wire_bytes = Vec::new();
                let mut quorum_rounds = 0u64;
                let mut rejected = 0u64;
                for t in 0..trials {
                    let plan = cell_plan(9_000 + t, drop, crashes, byz);
                    let cfg = ClusterConfig::new(SHARDS, 2300 + t).with_fault_plan(plan);
                    match Cluster::new(ThreeMajority, &start, cfg).run_to_consensus(1_000_000) {
                        Ok(out) => {
                            // Consensus is declared over the honest
                            // view; the merged view also carries the
                            // liar's last accepted body (its initial
                            // snapshot — every inflated successor is
                            // rejected), so it collapses to one color
                            // only in liar-free cells. Mass is
                            // conserved either way.
                            sweep_ok &= out.final_config.n() == n
                                && (byz > 0 || out.final_config.is_consensus())
                                && (byz == 0 || out.faults.rejected_reports > 0)
                                && out.faults.rejoins == crashes as u64;
                            if crashes > 0 {
                                // Re-consensus must postdate the last
                                // rejoin: the frozen snapshot keeps the
                                // honest view diverse until then.
                                sweep_ok &= out.consensus_round > last_rejoin;
                                recovery.push(out.consensus_round - last_rejoin);
                            }
                            consensus.push(out.consensus_round);
                            wire_bytes.push(out.faults.bytes_sent);
                            recovered.push(out.faults.recovered_samples);
                            quorum_rounds += out.faults.quorum_rounds;
                            rejected += out.faults.rejected_reports;
                        }
                        Err(out) => {
                            println!(
                                "cell drop={drop} crashes={crashes} byz={byz} trial {t}: \
                                 {:?} after {} rounds",
                                out.stop, out.rounds_run
                            );
                            sweep_ok = false;
                        }
                    }
                }
                let mean = |v: &[u64]| {
                    if v.is_empty() {
                        "-".into()
                    } else {
                        fmt_f64(Summary::of_counts(v).mean())
                    }
                };
                table.row(vec![
                    fmt_f64(drop),
                    crashes.to_string(),
                    byz.to_string(),
                    mean(&consensus),
                    mean(&recovery),
                    mean(&recovered),
                    quorum_rounds.to_string(),
                    rejected.to_string(),
                    if wire_bytes.is_empty() {
                        "-".into()
                    } else {
                        fmt_f64(Summary::of_counts(&wire_bytes).mean() / 1e6)
                    },
                ]);
            }
        }
    }
    println!("{table}");

    // 3. Negative control: tolerance is a real bound.
    section("negative control (crashes beyond F)");
    let plan = cell_plan(77, 0.0, 2, 0)
        .with_crash(CrashSpec { shard: 2, crash_round: CRASH_ROUND, rejoin_round: None })
        .with_crash(CrashSpec { shard: 3, crash_round: CRASH_ROUND, rejoin_round: None })
        .with_max_faulty(1);
    let err =
        Cluster::new(ThreeMajority, &start, ClusterConfig::new(SHARDS, 4321).with_fault_plan(plan))
            .run_to_consensus(1_000);
    let control_ok = matches!(&err, Err(out) if out.stop == StopReason::TooManyFaults);
    match &err {
        Err(out) => println!(
            "4 faulty shards vs F = 1: {:?} at round {} (quorum never folded a minority view)",
            out.stop, out.rounds_run
        ),
        Ok(_) => println!("UNEXPECTED consensus with 4 faulty shards vs F = 1"),
    }

    verdict(
        "E22",
        "the quorum-relaxed cluster re-reaches 3-Majority consensus across the drop x crash x \
         Byzantine sweep, the inert plan is seed-exact with the strict runtime, and \
         over-tolerance fault loads abort with the typed reason",
        inert_ok && sweep_ok && control_ok,
    );
}
