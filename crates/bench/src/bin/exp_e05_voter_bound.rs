//! E5 — Lemma 3: Voter reduces n colors to k w.h.p. in `O((n/k) log n)`
//! rounds, with `E[T^k_V] = E[T^k_C] ≤ 20·n/k` (Equation (19)).
//!
//! Regenerates the mean hitting-time series over a k-grid and compares
//! against both the expectation bound (with the paper's constant 20) and
//! the w.h.p. bound; also cross-checks `T^k_V` against the coalescence
//! time `T^k_C` measured on the same complete graph (they must agree in
//! distribution — exact equality per realization is E6's job).

use symbreak_bench::{hitting_times, scaled_trials, section, verdict, HeadlineRule};
use symbreak_core::theory::{lemma3_expectation_bound, lemma3_whp_bound};
use symbreak_core::Configuration;
use symbreak_graphs::{coalescence_time, Graph};
use symbreak_sim::rng::Pcg64;
use symbreak_sim::run_trials;
use symbreak_stats::table::fmt_f64;
use symbreak_stats::{Summary, Table};

fn main() {
    println!("# E5: Voter color-reduction bound (Lemma 3)");
    let n: u64 = 4096;
    let trials = scaled_trials(30);
    let start = Configuration::singletons(n);

    section("Mean T^k of Voter vs the Lemma-3 bounds (n = 4096)");
    let mut table = Table::new(vec![
        "k",
        "mean T^k Voter",
        "p99 T^k",
        "E-bound 20n/k",
        "whp bound (n/k)ln n",
        "within E-bound",
    ]);
    let mut all_within = true;
    for (i, &k) in [2048u64, 512, 128, 32, 8, 2, 1].iter().enumerate() {
        let tv = hitting_times(HeadlineRule::Voter, &start, k as usize, trials, 800 + i as u64);
        let s = Summary::of_counts(&tv);
        let ebound = lemma3_expectation_bound(n, k);
        let whp = lemma3_whp_bound(n, k);
        let ok = s.mean() <= ebound;
        all_within &= ok;
        table.row(vec![
            k.to_string(),
            fmt_f64(s.mean()),
            fmt_f64(s.quantile(0.99)),
            fmt_f64(ebound),
            fmt_f64(whp),
            if ok { "✓".into() } else { "exceeded".to_string() },
        ]);
    }
    println!("{table}");

    section("Cross-check: coalescing random walks on K_n (duality, in distribution)");
    // The complete-graph coalescence excludes self-sampling (walks move to
    // a uniform *neighbor*), while the paper's Voter samples uniformly
    // among all n nodes; the (1 − 1/n) factor is absorbed by the bound.
    let n_small = 1024usize;
    let mut table2 = Table::new(vec!["k", "mean T^k_C (K_1024)", "E-bound 20n/k"]);
    let mut coalescence_ok = true;
    for (i, &k) in [64usize, 8, 1].iter().enumerate() {
        let times = run_trials(trials, 900 + i as u64, move |_t, s| {
            use rand::SeedableRng;
            let g = Graph::complete(n_small);
            let mut rng = Pcg64::seed_from_u64(s);
            coalescence_time(&g, k, u64::MAX, &mut rng).expect("uncapped")
        });
        let s = Summary::of_counts(&times);
        let ebound = lemma3_expectation_bound(n_small as u64, k as u64);
        coalescence_ok &= s.mean() <= ebound;
        table2.row(vec![k.to_string(), fmt_f64(s.mean()), fmt_f64(ebound)]);
    }
    println!("{table2}");

    verdict(
        "E5",
        "E[T^k] of Voter and of coalescing walks stay below 20·n/k across the k-grid",
        all_within && coalescence_ok,
    );
}
