//! E26 — incremental round state: delta-updatable samplers make
//! stalled-regime rounds `O(#changed)` instead of `O(#occupied)`.
//!
//! Every per-round sampler in the stack used to be rebuilt from scratch
//! each round — `O(#occupied)` (engine round samplers, the push-gear
//! union alias) or `O(k)` (dense cache recounts) — even in the stalled
//! Theorem-5 regime where only `O(1)` opinions actually change per
//! round. [`RoundStateMode::Incremental`] keeps the samplers alive and
//! patches them from the touched-slot change set:
//! [`symbreak_sim::dist::DynamicCategorical`] takes an `O(log k)` point
//! update and draws in `O(log k)`, and the
//! [`UpdatableSampler`](symbreak_sim::dist::UpdatableSampler)
//! arbitration re-aliases only when enough mass moved to make the Vose
//! table worth rebuilding — so an unchanged round reuses last round's
//! table outright.
//!
//! **Part A** pins the complexity claim at the sampler layer, the same
//! isolation the E25 gear bands used: a fixed tree of `k = 2¹⁸` slots,
//! exactly 64 patched slots and 64 draws per round, with `#occupied`
//! swept 16x (4096 → 65536). The incremental arm (Fenwick patch +
//! draw) must hold a flat band (≤ 1.3x) — its cost has no `#occupied`
//! term at all — while the rebuild arm (fresh Vose alias over the
//! occupied weights per round, the pre-PR union/sampler idiom) grows
//! roughly linearly.
//!
//! **Part B** pins the payoff where the claim lives: the stalled
//! Theorem-5 regime of E20, `k = n = 10⁵` singletons under 2-Choices
//! on the 8-shard push-gear cluster with delta reports — an agent
//! switches opinion only when both its samples agree, so the expected
//! number of changed histogram slots per round is `O(1)` *globally*.
//! The rebuild arm re-broadcasts every shard's full histogram
//! (`shards² · #occupied` wire entries), re-deduplicates the union and
//! re-aliases it every round; the incremental arm broadcasts zigzag
//! deltas, patches the persistent union, and reuses the consume-side
//! alias table outright on switch-free rounds. Paired same-seed
//! trajectories, best-of-reps per round: the incremental run must be
//! ≥ 1.3x faster — and the delta wire ≥ 10x smaller — at full scale.
//!
//! **Part C** (informational) runs the mode pairing where the win is
//! *not*: the single-process [`AgentEngine`] on the same stalled
//! workload (no wire and no union to skip — measures the
//! [`UpdatableSampler`](symbreak_sim::dist::UpdatableSampler)
//! arbitration against the engine's already-lean rebuild), and the
//! condensed cluster on a uniform `k = 256` start (every slot live and
//! wholesale-resampled per round, so deltas are as wide as full
//! broadcasts — measures the delta path's overhead ceiling).
//!
//! `SYMBREAK_SCALE` scales the Part B/C populations (never upscaled:
//! the claim is pinned at n = 10⁵). Part A ignores it — the sampler
//! microbenchmark has no population to shrink, and a shorter timed
//! loop only adds noise to the band it exists to pin.

use std::hint::black_box;
use std::time::Instant;

use rand::{Rng, SeedableRng};
use symbreak_bench::{scale, section, verdict};
use symbreak_core::rules::{ThreeMajority, TwoChoices};
use symbreak_core::{AgentEngine, Configuration, Engine, RoundStateMode};
use symbreak_runtime::{Cluster, ClusterConfig, GearMode, ReportMode};
use symbreak_sim::dist::{Categorical, DynamicCategorical};
use symbreak_sim::rng::Pcg64;
use symbreak_stats::table::fmt_f64;
use symbreak_stats::Table;

/// Fixed tree width for Part A: the slot universe the Fenwick sampler
/// spans. Patch and draw cost `O(log K_SLOTS)` regardless of occupancy.
/// 2^18 keeps the whole tree (~4 MB of f64 prefix nodes) inside a
/// commodity L3 at every sweep point, so the band measures the
/// algorithmic cost rather than where the tree falls out of cache.
const K_SLOTS: usize = 1 << 18;
/// Patched slots per Part A round (the fixed `#changed`).
const CHANGED: usize = 64;
/// Draws per Part A round (small against `#occupied`: the stalled
/// regime draws little, which is exactly when rebuilds can't amortize).
const DRAWS: usize = 64;
/// Repetitions per timed leg; each leg scores its best per-round time.
const REPS: usize = 3;

/// One Part A arm: `rounds` rounds of 64 patches + 64 draws over a
/// fixed occupied set. The incremental arm patches a persistent
/// [`DynamicCategorical`]; the rebuild arm applies the same patches to
/// its dense counts and rebuilds a Vose [`Categorical`] from the
/// occupied weights every round (the pre-incremental idiom,
/// `O(#occupied)` per round). `patch_slots` is the *same* set at every
/// sweep point (the strided sets nest), so "fixed `#changed`" holds
/// literally — the patched slots, not just their number, are
/// occupancy-independent. The patch stream — identical for both arms —
/// is precomputed outside the timed loop: choosing which slot flips is
/// harness bookkeeping, not sampler cost. Returns µs/round.
fn part_a_arm(occ_slots: &[usize], patch_slots: &[usize], rounds: u64, incremental: bool) -> f64 {
    let mut counts = vec![0u64; K_SLOTS];
    for &s in occ_slots {
        counts[s] = 2;
    }
    // Toggle slots between 1 and 2 so every patch is a real count
    // change and the occupied set stays fixed.
    let mut schedule = Pcg64::seed_from_u64(2600);
    let patches: Vec<(u32, u64)> = (0..rounds as usize * CHANGED)
        .map(|_| {
            let s = patch_slots[schedule.gen_range(0..patch_slots.len())];
            let c = 3 - counts[s];
            counts[s] = c;
            (s as u32, c)
        })
        .collect();
    for &s in occ_slots {
        counts[s] = 2;
    }
    let mut draw_rng = Pcg64::seed_from_u64(if incremental { 2601 } else { 2602 });
    let mut fen = DynamicCategorical::new(&counts);
    let mut alias: Option<Categorical> = None;
    let mut weights: Vec<f64> = Vec::with_capacity(occ_slots.len());
    let t = Instant::now();
    for round in 0..rounds as usize {
        let block = &patches[round * CHANGED..(round + 1) * CHANGED];
        if incremental {
            for &(s, c) in block {
                fen.set(s as usize, c);
            }
            for _ in 0..DRAWS {
                black_box(fen.sample(&mut draw_rng));
            }
        } else {
            for &(s, c) in block {
                counts[s as usize] = c;
            }
            weights.clear();
            weights.extend(occ_slots.iter().map(|&s| counts[s] as f64));
            match &mut alias {
                Some(a) => a.rebuild(&weights),
                None => alias = Some(Categorical::new(&weights)),
            }
            let a = alias.as_ref().expect("alias just built");
            for _ in 0..DRAWS {
                black_box(occ_slots[a.sample(&mut draw_rng)]);
            }
        }
    }
    t.elapsed().as_secs_f64() * 1e6 / rounds as f64
}

fn main() {
    println!(
        "# E26: incremental round state — O(#changed) stalled rounds, rebuild as the paired \
         baseline"
    );

    // ---------------- Part A: sampler-layer flat band ----------------
    // Part A is a pure sampler microbenchmark: its cost is independent
    // of n, so SYMBREAK_SCALE has nothing to shrink — scaling the round
    // count down only widens the best-of timing noise past the 1.3x
    // band this part exists to pin. Always run the full loop (~13 s).
    let rounds_a = 3_000u64;
    let occupancies: [usize; 3] = [4_096, 16_384, 65_536];
    section(&format!(
        "Part A: k = 2^18 slots, {CHANGED} patches + {DRAWS} draws per round, {rounds_a} rounds, \
         #occupied swept {}x",
        occupancies[occupancies.len() - 1] / occupancies[0]
    ));
    let mut table = Table::new(vec!["#occupied", "incremental us/r", "rebuild us/r", "ratio"]);
    let mut inc_band: Vec<f64> = Vec::new();
    let mut reb_line: Vec<f64> = Vec::new();
    // The patched slots are the sparsest sweep point's strided set —
    // a subset of every denser strided set, so the changed set is
    // identical at every occupancy.
    let patch_stride = K_SLOTS / occupancies[0];
    let patch_slots: Vec<usize> = (0..occupancies[0]).map(|i| i * patch_stride).collect();
    // Evenly strided occupied sets over the slot universe.
    let occ_slots: Vec<Vec<usize>> = occupancies
        .iter()
        .map(|&occ| {
            let stride = K_SLOTS / occ;
            (0..occ).map(|i| i * stride).collect()
        })
        .collect();
    // Reps run outermost, interleaved across occupancies, so every
    // sweep point's best-of draws from the same turbo/thermal phases —
    // timing the points minutes apart is what makes the band flaky.
    // The incremental arm is ~40x cheaper than the rebuild arm and is
    // the one the band acceptance reads, so it gets 3x the reps.
    let mut best = [[f64::INFINITY; 2]; 3];
    for rep in 0..3 * REPS {
        for (j, slots) in occ_slots.iter().enumerate() {
            best[j][0] = best[j][0].min(part_a_arm(slots, &patch_slots, rounds_a, true));
            if rep < REPS {
                best[j][1] = best[j][1].min(part_a_arm(slots, &patch_slots, rounds_a, false));
            }
        }
    }
    for (j, &occ) in occupancies.iter().enumerate() {
        inc_band.push(best[j][0]);
        reb_line.push(best[j][1]);
        table.row(vec![
            occ.to_string(),
            fmt_f64(best[j][0]),
            fmt_f64(best[j][1]),
            format!("{:.2}x", best[j][1] / best[j][0]),
        ]);
    }
    println!("{table}");
    let band_lo = inc_band.iter().cloned().fold(f64::INFINITY, f64::min);
    let band_hi = inc_band.iter().cloned().fold(0.0, f64::max);
    let band = band_hi / band_lo;
    let growth = reb_line[reb_line.len() - 1] / reb_line[0];
    let bands_ok = band < 1.3;
    println!(
        "incremental band: {band_lo:.2}-{band_hi:.2} us/round ({band:.2}x, acceptance < 1.3x) \
         while #occupied grows 16x; rebuild line grows {growth:.1}x"
    );

    // ---------------- Part B: paired stalled-regime cluster trajectory ----------------
    let n_b = ((100_000.0 * scale().min(1.0)).round() as u64).max(4_096);
    let horizon_b = 64u64;
    section(&format!(
        "Part B: 2-Choices, k = n = {n_b} singletons (Theorem-5 stalled regime), 8 shards, \
         forced push, delta reports, horizon {horizon_b}, paired same-seed cluster runs, \
         best-of-{REPS} per-round timing"
    ));
    let start_b = Configuration::singletons(n_b);
    let mut best_b = [f64::INFINITY; 2];
    let mut wire_b = [0u64; 2];
    for _ in 0..REPS {
        for (i, rs) in [(0usize, RoundStateMode::Incremental), (1, RoundStateMode::Rebuild)] {
            let config = ClusterConfig::new(8, 4242)
                .with_data_gear(GearMode::ForcePush)
                .with_report_mode(ReportMode::Delta)
                .with_round_state(rs);
            let cluster = Cluster::new(TwoChoices, &start_b, config);
            let t = Instant::now();
            let out = cluster.run_horizon(horizon_b);
            let secs = t.elapsed().as_secs_f64();
            assert_eq!(out.final_config.n(), n_b, "mass conserved ({rs:?})");
            assert!(
                out.consensus_round.is_none(),
                "the Theorem-5 horizon must stay stalled ({rs:?})"
            );
            best_b[i] = best_b[i].min(secs / out.rounds_run.max(1) as f64);
            wire_b[i] = out.total_messages;
        }
    }
    let speedup_b = best_b[1] / best_b[0];
    let wire_ratio = wire_b[1] as f64 / wire_b[0].max(1) as f64;
    let mut table = Table::new(vec!["mode", "ms/round", "wire entries"]);
    table.row(vec!["incremental".into(), fmt_f64(best_b[0] * 1e3), wire_b[0].to_string()]);
    table.row(vec!["rebuild".into(), fmt_f64(best_b[1] * 1e3), wire_b[1].to_string()]);
    println!("{table}");
    println!(
        "stalled-regime speedup: {speedup_b:.2}x (acceptance floor 1.3x at full scale); delta \
         wire collapse: {wire_ratio:.1}x fewer entries (floor 10x at full scale)"
    );

    // ---------------- Part C: overhead checks (informational) ----------------
    section(&format!(
        "Part C (informational): where the win is not — the single-process engine on the \
         stalled workload (n = {n_b}) and the condensed cluster on a uniform k = 256 start"
    ));
    let mut best_eng = [f64::INFINITY; 2];
    let horizon_eng = 300u64;
    for _ in 0..REPS {
        for (i, rs) in [(0usize, RoundStateMode::Incremental), (1, RoundStateMode::Rebuild)] {
            let mut engine = AgentEngine::new(TwoChoices, &start_b, 4242).with_round_state(rs);
            let t = Instant::now();
            for _ in 0..horizon_eng {
                engine.step();
            }
            let secs = t.elapsed().as_secs_f64();
            assert_eq!(
                engine.config_ref().n() + engine.undecided(),
                n_b,
                "mass conserved ({rs:?})"
            );
            best_eng[i] = best_eng[i].min(secs / horizon_eng as f64);
        }
    }
    let n_c = ((1_000_000.0 * scale().min(1.0)).round() as u64).max(65_536);
    let start_c = Configuration::uniform(n_c, 256);
    let horizon_c = 48u64;
    let mut best_c = [f64::INFINITY; 2];
    for _ in 0..REPS {
        for (i, rs) in [(0usize, RoundStateMode::Incremental), (1, RoundStateMode::Rebuild)] {
            let config = ClusterConfig::new(8, 2626)
                .with_data_gear(GearMode::ForcePush)
                .with_round_state(rs);
            let cluster = Cluster::new(ThreeMajority, &start_c, config);
            let t = Instant::now();
            let out = cluster.run_horizon(horizon_c);
            let secs = t.elapsed().as_secs_f64();
            assert_eq!(out.final_config.n(), n_c, "mass conserved ({rs:?})");
            best_c[i] = best_c[i].min(secs / out.rounds_run.max(1) as f64);
        }
    }
    let mut table = Table::new(vec!["venue", "incremental ms/r", "rebuild ms/r", "ratio"]);
    table.row(vec![
        format!("engine, 2-Choices singletons n = {n_b}"),
        fmt_f64(best_eng[0] * 1e3),
        fmt_f64(best_eng[1] * 1e3),
        format!("{:.2}x", best_eng[1] / best_eng[0]),
    ]);
    table.row(vec![
        format!("cluster condensed, 3-Majority uniform k = 256, n = {n_c}"),
        fmt_f64(best_c[0] * 1e3),
        fmt_f64(best_c[1] * 1e3),
        format!("{:.2}x", best_c[1] / best_c[0]),
    ]);
    println!("{table}");
    println!(
        "overhead checks: no wire or union to skip (engine) and deltas as wide as fulls \
         (condensed uniform) — ratios near 1.0x are the expected ceiling, not the claim"
    );

    let enforce = scale() >= 0.999;
    verdict(
        "E26",
        "the incremental round state holds an occupancy-independent per-round band (16x \
         occupancy growth inside a 1.3x band) and runs the stalled Theorem-5 cluster regime \
         >= 1.3x faster (>= 10x less wire) than the per-round rebuild baseline at full scale",
        bands_ok && (!enforce || (speedup_b >= 1.3 && wire_ratio >= 10.0)),
    );
}
