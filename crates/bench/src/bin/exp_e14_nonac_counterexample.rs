//! E14 — the scope limit of Theorem 2: it is **false** for non-AC
//! processes. 2-Choices *dominates* Voter in expectation (Definition 2 —
//! its expectation equals 3-Majority's), yet from many-color
//! configurations its hitting times are far *larger* than Voter's, the
//! opposite of what Theorem 2 would conclude. The AC hypothesis (update
//! independent of the node's own state) is therefore essential.

use rand::SeedableRng;
use symbreak_bench::{hitting_times, scaled_trials, section, verdict, HeadlineRule};
use symbreak_core::dominance::{expected_majorizes, random_majorizing_pair};
use symbreak_core::rules::{TwoChoices, Voter};
use symbreak_core::Configuration;
use symbreak_sim::rng::Pcg64;
use symbreak_stats::table::fmt_f64;
use symbreak_stats::{StochasticOrder, Summary, Table};

fn main() {
    println!("# E14: Theorem 2 fails without the AC hypothesis (2-Choices vs Voter)");
    let n: u64 = 2048;
    let trials = scaled_trials(200);
    let start = Configuration::singletons(n);

    section("Premise: 2-Choices dominates Voter in expectation (Definition 2)");
    let mut rng = Pcg64::seed_from_u64(71);
    let pairs = 2_000;
    let mut dominates = true;
    for _ in 0..pairs {
        let (c, ct) = random_majorizing_pair(256, 8, 4, &mut rng);
        dominates &= expected_majorizes(&TwoChoices, &Voter, &c, &ct);
    }
    println!("E[2C(c)] ⪰ E[V(c̃)] on {pairs} random majorizing pairs: {dominates}");

    section("…but the Theorem-2 conclusion is inverted (n = 2048, singleton start)");
    let mut table = Table::new(vec![
        "kappa",
        "mean T^k 2-Choices",
        "mean T^k Voter",
        "2C ≤st Voter (Thm-2 prediction)",
        "Voter ≤st 2C (actual)",
    ]);
    let mut inversion = true;
    for (i, &kappa) in [512usize, 128, 32].iter().enumerate() {
        let t2 = hitting_times(HeadlineRule::TwoChoices, &start, kappa, trials, 2600 + i as u64);
        let tv = hitting_times(HeadlineRule::Voter, &start, kappa, trials, 2700 + i as u64);
        let predicted = StochasticOrder::test_counts(&t2, &tv); // 2C ≤st V?
        let actual = StochasticOrder::test_counts(&tv, &t2); // V ≤st 2C?
        let pred_fails = predicted.max_violation > 0.5; // decisively violated
        let actual_holds = actual.holds_within(0.05);
        inversion &= pred_fails && actual_holds;
        table.row(vec![
            kappa.to_string(),
            fmt_f64(Summary::of_counts(&t2).mean()),
            fmt_f64(Summary::of_counts(&tv).mean()),
            if pred_fails { "decisively violated".into() } else { "held?!".to_string() },
            if actual_holds { "holds ✓".into() } else { "violated".to_string() },
        ]);
    }
    println!("{table}");
    println!("(2-Choices keeps its own color on mismatch — its update depends on the");
    println!(" node's state, so it is not an AC-process and Theorem 2 does not apply.)");

    verdict(
        "E14",
        "2-Choices dominates Voter in expectation yet is stochastically *slower* — Theorem 2 needs AC",
        dominates && inversion,
    );
}
