//! E17 — model fidelity of the message-passing runtime: the sharded
//! actor cluster (true request/reply Uniform Pull over channels) is the
//! same stochastic process as the single-threaded engines.
//!
//! Compares consensus-time distributions (cluster vs vector engine) per
//! rule with a two-sample KS test, and scales the shard count to show the
//! protocol is insensitive to the physical partition.

use symbreak_bench::{scaled_trials, section, verdict};
use symbreak_core::rules::{ThreeMajority, TwoChoices};
use symbreak_core::{
    run_to_consensus, Configuration, RunOptions, UpdateRule, VectorEngine, VectorStep,
};
use symbreak_runtime::{Cluster, ClusterConfig};
use symbreak_sim::run_trials;
use symbreak_stats::ecdf::ks_threshold;
use symbreak_stats::table::fmt_f64;
use symbreak_stats::{StochasticOrder, Summary, Table};

fn cluster_times<R>(
    rule: R,
    start: &Configuration,
    shards: usize,
    trials: u64,
    seed: u64,
) -> Vec<u64>
where
    R: UpdateRule + Clone + Send + Sync,
{
    let start = start.clone();
    run_trials(trials, seed, move |_t, s| {
        let cluster = Cluster::new(rule.clone(), &start, ClusterConfig::new(shards, s));
        cluster.run_to_consensus(10_000_000).expect("consensus").consensus_round
    })
}

fn engine_times<R>(rule: R, start: &Configuration, trials: u64, seed: u64) -> Vec<u64>
where
    R: VectorStep + Clone + Send + Sync,
{
    let start = start.clone();
    run_trials(trials, seed, move |_t, s| {
        let mut e = VectorEngine::new(rule.clone(), start.clone(), s);
        run_to_consensus(&mut e, &RunOptions { max_rounds: u64::MAX, record_trace: false })
            .consensus_round
            .expect("consensus")
    })
}

fn main() {
    println!("# E17: the message-passing cluster realizes the same process");
    let n = 512u64;
    let k = 16;
    let trials = scaled_trials(120);
    let start = Configuration::uniform(n, k);

    section("Consensus-time distributions: cluster (4 shards) vs vector engine");
    let mut table =
        Table::new(vec!["rule", "cluster mean", "engine mean", "KS", "threshold (α=0.01)"]);
    let threshold = ks_threshold(trials as usize, trials as usize, 1.63);
    let mut all_match = true;

    let c3 = cluster_times(ThreeMajority, &start, 4, trials, 3100);
    let e3 = engine_times(ThreeMajority, &start, trials, 3200);
    let ks3 = StochasticOrder::test_counts(&c3, &e3).ks;
    all_match &= ks3 < threshold;
    table.row(vec![
        "3-Majority".into(),
        fmt_f64(Summary::of_counts(&c3).mean()),
        fmt_f64(Summary::of_counts(&e3).mean()),
        fmt_f64(ks3),
        fmt_f64(threshold),
    ]);

    let c2 = cluster_times(TwoChoices, &start, 4, trials, 3300);
    let e2 = engine_times(TwoChoices, &start, trials, 3400);
    let ks2 = StochasticOrder::test_counts(&c2, &e2).ks;
    all_match &= ks2 < threshold;
    table.row(vec![
        "2-Choices".into(),
        fmt_f64(Summary::of_counts(&c2).mean()),
        fmt_f64(Summary::of_counts(&e2).mean()),
        fmt_f64(ks2),
        fmt_f64(threshold),
    ]);
    println!("{table}");

    section("Shard-count invariance (3-Majority)");
    let mut table2 = Table::new(vec!["shards", "mean rounds", "KS vs 1 shard"]);
    let base = cluster_times(ThreeMajority, &start, 1, trials, 3500);
    let mut shard_invariant = true;
    for shards in [2usize, 4, 8] {
        let times = cluster_times(ThreeMajority, &start, shards, trials, 3600 + shards as u64);
        let ks = StochasticOrder::test_counts(&times, &base).ks;
        shard_invariant &= ks < threshold;
        table2.row(vec![
            shards.to_string(),
            fmt_f64(Summary::of_counts(&times).mean()),
            fmt_f64(ks),
        ]);
    }
    println!("{table2}");

    verdict(
        "E17",
        "message-passing execution matches the engines' law and is shard-count invariant",
        all_match && shard_invariant,
    );
}
