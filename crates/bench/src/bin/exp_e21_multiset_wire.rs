//! E21 — the sample-consumption taxonomy on the wire: multiset- and
//! single-peer-native palette consumption versus the ordered-window
//! dealing, paired on the workloads where PR 4 documented the
//! diverse-regime data-plane floor.
//!
//! Background: with every color alive in every shard (the E20-style
//! diverse regime), no wire *format* beats the `O(n·h)` per-round draw
//! floor — batched ≈ per-entry on wall-clock. But the floor's constant
//! is not fixed: rules that consume only the **multiset** of each
//! node's window (3-Majority here) can take received palettes directly
//! as histogram splits (per-node multivariate-hypergeometric windows,
//! no inside-out Fisher–Yates dealing pass), and single-peer rules
//! (Voter) can skip sample materialization entirely — the dealt
//! multiset *is* the next opinion vector. `ConsumeMode::Native` versus
//! `ConsumeMode::Ordered` isolates exactly that change on identical
//! fixed-horizon workloads.
//!
//! Both consumptions realize exactly the Uniform Pull law (they consume
//! randomness differently, so trajectories are compared
//! distributionally): the verdict requires a Welch 5σ agreement of the
//! end-of-horizon observables over independent trials, plus — at full
//! scale, where timing is meaningful on this box — the native path not
//! losing to the ordered one on wall-clock. The realized floor drop is
//! printed either way.
//!
//! `SYMBREAK_SCALE` scales `n` (default 10⁵, floor 4096) and the
//! horizons; the CI smoke runs `SYMBREAK_SCALE=0.04096`.

use std::time::Instant;

use symbreak_bench::{scale, scaled_trials, section, verdict};
use symbreak_core::rules::{ThreeMajority, Voter};
use symbreak_core::{Configuration, UpdateRule};
use symbreak_runtime::{Cluster, ClusterConfig, ConsumeMode, HorizonOutcome};
use symbreak_stats::table::fmt_f64;
use symbreak_stats::{Summary, Table};

/// Minimum `n` at which wall-clock enters the verdict (below it the
/// rounds are too short for the timing to mean anything).
const TIMED_FLOOR_N: u64 = 50_000;

/// Shard count for both workloads.
const SHARDS: usize = 8;

struct Paired {
    name: &'static str,
    horizon: u64,
    ordered_secs: f64,
    native_secs: f64,
    welch_ok: bool,
}

fn run_paired<R: UpdateRule + Clone + Send>(
    name: &'static str,
    rule: R,
    n: u64,
    horizon: u64,
    trials: u64,
    seed: u64,
    observe: impl Fn(&HorizonOutcome) -> u64,
) -> Paired {
    let mut secs = [0.0f64; 2];
    let mut observed: [Vec<u64>; 2] = [Vec::new(), Vec::new()];
    for (slot, consume) in [(0, ConsumeMode::Ordered), (1, ConsumeMode::Native)] {
        let start = Instant::now();
        for t in 0..trials {
            let cfg = ClusterConfig::new(SHARDS, seed + t).with_consume_mode(consume);
            let cluster = Cluster::new(rule.clone(), &Configuration::singletons(n), cfg);
            let out = cluster.run_horizon(horizon);
            observed[slot].push(observe(&out));
        }
        secs[slot] = start.elapsed().as_secs_f64();
    }

    let ordered = Summary::of_counts(&observed[0]);
    let native = Summary::of_counts(&observed[1]);
    let tol = 5.0 * (ordered.std_err().powi(2) + native.std_err().powi(2)).sqrt() + 0.5;
    let welch_ok = (ordered.mean() - native.mean()).abs() < tol;

    let mut table =
        Table::new(vec!["consumption", "total s", "ms/round", "observable mean", "observable sd"]);
    for (slot, label) in [(0usize, "ordered"), (1, "native")] {
        let s = Summary::of_counts(&observed[slot]);
        table.row(vec![
            label.to_string(),
            fmt_f64(secs[slot]),
            fmt_f64(secs[slot] * 1e3 / (horizon * trials) as f64),
            fmt_f64(s.mean()),
            fmt_f64(s.std_dev()),
        ]);
    }
    println!("{table}");
    println!(
        "floor: native {:.2}x vs ordered on identical work; law agreement |Δmean| {} < {} ({})",
        secs[0] / secs[1],
        fmt_f64((ordered.mean() - native.mean()).abs()),
        fmt_f64(tol),
        if welch_ok { "ok" } else { "DIVERGED" }
    );

    Paired { name, horizon, ordered_secs: secs[0], native_secs: secs[1], welch_ok }
}

fn main() {
    let n = ((100_000.0 * scale()).round() as u64).max(4096);
    let trials = scaled_trials(6);
    println!(
        "# E21: multiset-native wire consumption (n = k = {n}, {SHARDS} shards, batched wire)"
    );

    // Voter on its fixed diverse horizon: the documented floor-parity
    // workload. Single-peer consumption deletes the Fisher–Yates pass,
    // the sample buffer, and the per-node rule calls; the colors-alive
    // count at the horizon (~2n/t decay) pins the law.
    let voter_horizon = ((2_000.0 * scale()).round() as u64).clamp(64, 4_000);
    section(&format!(
        "Voter (single peer), fixed {voter_horizon}-round diverse horizon x {trials} trials"
    ));
    let voter = run_paired("Voter", Voter, n, voter_horizon, trials, 210_000, |out| {
        out.final_config.num_colors() as u64
    });

    // 3-Majority from singletons: diverse fallback for the first rounds,
    // then hypergeometric/window-walk splits (and the push gear) once
    // occupancy collapses. Max support at the horizon pins the law.
    let tm_horizon = ((300.0 * scale()).round() as u64).clamp(48, 600);
    section(&format!(
        "3-Majority (multiset), fixed {tm_horizon}-round singleton horizon x {trials} trials"
    ));
    let three_majority =
        run_paired("3-Majority", ThreeMajority, n, tm_horizon, trials, 220_000, |out| {
            out.final_config.max_support()
        });

    let mut laws_ok = true;
    let mut floor_ok = true;
    for p in [&voter, &three_majority] {
        laws_ok &= p.welch_ok;
        if n >= TIMED_FLOOR_N {
            // Native must at least not lose (generous 5% band for this
            // box's ambient drift); the printed ratio is the real story.
            floor_ok &= p.native_secs <= p.ordered_secs * 1.05;
        }
        println!(
            "{}: {} rounds, ordered {:.2}s vs native {:.2}s ({:.2}x)",
            p.name,
            p.horizon,
            p.ordered_secs,
            p.native_secs,
            p.ordered_secs / p.native_secs
        );
    }
    if n < TIMED_FLOOR_N {
        println!("(n < {TIMED_FLOOR_N}: wall-clock excluded from the verdict at smoke scale)");
    }

    verdict(
        "E21",
        "multiset/single-peer native consumption matches the Uniform Pull law and does not \
         lose wall-clock to the ordered dealing on the floor-bound workloads",
        laws_ok && floor_ok,
    );
}
