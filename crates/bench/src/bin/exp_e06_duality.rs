//! E6 — Lemma 4 / Figure 1: the exact Voter/coalescence coupling.
//!
//! Materializes the arrow field `Y_t(u)`, runs coalescing walks forward
//! and the Voter process over the *same* arrows in reverse, and checks
//! `T^k_V = T^k_C` **exactly per realization** — for every τ, on the
//! complete graph and on general graphs. This is the strongest possible
//! validation: not a statistical match but a per-sample identity.

use rand::SeedableRng;
use symbreak_bench::{scaled_trials, section, verdict};
use symbreak_graphs::{voter_time_from_coupling, DualityCoupling, Graph};
use symbreak_sim::rng::Pcg64;
use symbreak_stats::Table;

fn main() {
    println!("# E6: the Voter/coalescence duality, exactly (Lemma 4, Figure 1)");
    let trials = scaled_trials(20);

    section("Per-realization identity T^k_V = T^k_C across graphs and k");
    let mut table =
        Table::new(vec!["graph", "k", "trials", "exact matches", "per-τ identity holds"]);
    let mut all_exact = true;
    // Bipartite graphs (the 6-cube) can never coalesce below 2 walks under
    // synchronous steps — walks at odd distance preserve parity — so their
    // k-grid starts at 2.
    let graphs: Vec<(&str, Graph, Vec<usize>)> = vec![
        ("K_64", Graph::complete(64), vec![1, 4]),
        ("K_256", Graph::complete(256), vec![1, 4]),
        ("cycle_33", Graph::cycle(33), vec![1, 4]),
        ("torus_5x5", Graph::torus(5, 5), vec![1, 4]),
        ("hypercube_6", Graph::hypercube(6), vec![2, 8]),
        (
            "random_4_regular_64",
            {
                let mut rng = Pcg64::seed_from_u64(1);
                Graph::random_regular(64, 4, &mut rng)
            },
            vec![1, 4],
        ),
    ];
    for (gi, (name, g, ks)) in graphs.iter().enumerate() {
        for (ki, &k) in ks.iter().enumerate() {
            let mut matches = 0u64;
            let mut tau_identity = true;
            for t in 0..trials {
                let mut rng = Pcg64::seed_from_u64(1000 + 97 * gi as u64 + 13 * ki as u64 + t);
                let Some((coupling, t_c)) =
                    DualityCoupling::generate_until_coalesced(g, k, 5_000_000, &mut rng)
                else {
                    continue;
                };
                let t_v = voter_time_from_coupling(&coupling, k);
                if t_v == Some(t_c) {
                    matches += 1;
                }
                // Full per-τ check on the first trial of each cell (it is
                // O(T²·n)).
                if t == 0 {
                    tau_identity &= coupling.verify_identity();
                }
            }
            all_exact &= matches == trials && tau_identity;
            table.row(vec![
                name.to_string(),
                k.to_string(),
                trials.to_string(),
                format!("{matches}/{trials}"),
                if tau_identity { "✓".into() } else { "VIOLATED".to_string() },
            ]);
        }
    }
    println!("{table}");

    verdict(
        "E6",
        "T^k_V equals T^k_C exactly in every realization, on every graph tested (Lemma 4)",
        all_exact,
    );
}
