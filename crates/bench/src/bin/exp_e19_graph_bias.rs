//! E19 — \[CER14\]'s related-work claim: 2-Choices on random `d`-regular
//! graphs elects the initially-larger of two colors w.h.p. when the bias
//! is `Ω(n·√(1/d + d/n))`.
//!
//! Sweeps the relative bias on random regular graphs for two degrees and
//! on the complete graph, measuring the planted color's win probability.
//! The threshold scale `√(1/d + d/n)` shrinks with d (until d ≈ √n), so
//! denser graphs should flip to certainty at smaller bias.

use rand::SeedableRng;
use symbreak_bench::{scaled_trials, section, verdict};
use symbreak_core::Opinion;
use symbreak_graphs::{Graph, GraphDynamics, GraphRule};
use symbreak_sim::rng::Pcg64;
use symbreak_sim::run_trials;
use symbreak_stats::table::fmt_f64;
use symbreak_stats::{wilson_interval, Table};

fn main() {
    println!("# E19: 2-Choices bias threshold on d-regular graphs ([CER14])");
    let n = 1024usize;
    let trials = scaled_trials(30);

    section("Win probability of the planted color vs relative bias b/n");
    let mut rng = Pcg64::seed_from_u64(19);
    let graphs: Vec<(String, Graph, f64)> = vec![
        {
            let d = 8usize;
            let scale = ((1.0 / d as f64) + d as f64 / n as f64).sqrt();
            (format!("random_{d}_regular"), Graph::random_regular(n, d, &mut rng), scale)
        },
        {
            let d = 32usize;
            let scale = ((1.0 / d as f64) + d as f64 / n as f64).sqrt();
            (format!("random_{d}_regular"), Graph::random_regular(n, d, &mut rng), scale)
        },
        ("complete".into(), Graph::complete(n), (1.0 / n as f64).sqrt()),
    ];

    let mut table =
        Table::new(vec!["graph", "threshold scale √(1/d+d/n)", "b/n", "win prob", "Wilson 95% CI"]);
    let mut high_bias_ok = true;
    let mut zero_bias_balanced = true;
    for (gi, (name, graph, scale)) in graphs.iter().enumerate() {
        for (bi, &rel_bias) in [0.0f64, 0.1, 0.3, 0.6].iter().enumerate() {
            let bias = (rel_bias * n as f64) as u64;
            let big = (n as u64 + bias) / 2;
            let graph = graph.clone();
            let results = run_trials(trials, 5000 + 100 * gi as u64 + bi as u64, move |_t, s| {
                let mut rng = Pcg64::seed_from_u64(s);
                let opinions: Vec<Opinion> = (0..n as u64)
                    .map(|i| if i < big { Opinion::new(0) } else { Opinion::new(1) })
                    .collect();
                let mut d = GraphDynamics::with_opinions(&graph, opinions);
                d.run_to_consensus(GraphRule::TwoChoices, 10_000_000, &mut rng).expect("consensus");
                u64::from(d.opinions()[0] == Opinion::new(0))
            });
            let wins: u64 = results.iter().sum();
            let p = wins as f64 / trials as f64;
            let (lo, hi) = wilson_interval(wins, trials, 1.96);
            if rel_bias >= 0.6 {
                high_bias_ok &= p >= 0.95;
            }
            if rel_bias == 0.0 {
                zero_bias_balanced &= (0.1..=0.9).contains(&p);
            }
            table.row(vec![
                name.clone(),
                fmt_f64(*scale),
                fmt_f64(rel_bias),
                fmt_f64(p),
                format!("[{:.2}, {:.2}]", lo, hi),
            ]);
        }
    }
    println!("{table}");
    println!("(bias well above the threshold scale → the planted color wins w.h.p.;");
    println!(" at zero bias the winner is a coin flip — the [CER14] shape)");

    verdict(
        "E19",
        "2-Choices on regular graphs elects the planted color once the bias clears the √(1/d+d/n) scale",
        high_bias_ok && zero_bias_balanced,
    );
}
