//! E23 — condensed histogram shards at scale: the Theorem-5 horizon
//! swept at `n ≥ 10⁸`, which the agent-backed runtime cannot reach.
//!
//! A condensed shard ([`ShardRepr::Histogram`], the default for Multiset
//! and SinglePeer rules on the batched wire) keeps only its local
//! opinion histogram and steps it by closed-form aggregate draws, so a
//! round costs `O(#occupied · h)` compute in both gears (push since
//! this experiment; pull since E25's grouped consume) and the push gear
//! moves `O(#shards² · #occupied)` wire entries — independent of `n`.
//!
//! **Part A** runs the paper's *comply* side of the ignore-or-comply
//! separation over the *ignore* side's lower-bound horizon: 3-Majority
//! from the uniform `k = 4096` start (max support `ℓ = n/k`, so
//! Theorem 5's cap is `ℓ' = 2n/k` and its horizon `n/(γ·ℓ') = k/(2γ)
//! ≈ 682` rounds — *n-independent*). Theorem 5 says 2-Choices cannot
//! push any color past `ℓ'` within that horizon. 3-Majority does burst
//! through it — but in a time that *grows* with `n` (Theorem 4's
//! `O(n^{3/4} log^{7/8} n)` scale: from the balanced start the
//! symmetry-breaking signal is a relative fluctuation `~√(k/n)`, which
//! shrinks as `n` grows while the cap horizon does not). The sweep
//! asserts exactly that shape: the cap is broken at the smallest size,
//! and the breaking round is non-decreasing in `n` (escaping may fall
//! past the fixed horizon entirely at the largest sizes — observed at
//! `n = 10⁸`). The performance claim is asserted alongside: per-round
//! wall time stays in a constant band while `n` spans decades (the
//! condensation claim; the agent-backed form scales linearly). E20
//! holds the complementary side: 2-Choices (forced agent-backed)
//! respecting the cap at `n = 10⁶`. Full scale sweeps `n` up to 10⁸;
//! `SYMBREAK_SCALE=10` extends to 10⁹.
//!
//! **Part B** measures what condensation buys where the agent-backed
//! baseline can still run: paired same-seed fixed-horizon runs from the
//! `k = n = 10⁶` singleton start, `ShardRepr::Histogram` vs
//! `ShardRepr::Agents`, for 3-Majority and 2-Median (Multiset) and
//! Voter (SinglePeer), plus a `k = 4096` uniform 3-Majority pair as the
//! pure push-gear regime. The two representations realize the same
//! Uniform Pull law (pinned by `condensed_crossval`), so each pair
//! times the same workload.
//!
//! **Part C** is the 2-Median hot-path micro-bench: the per-round
//! vector step is a prefix-sum/CDF cascade at
//! `O(#occupied log #occupied)`; the measured scaling exponent over a
//! 4x occupancy growth must sit well below the old all-pairs form's 2.
//!
//! `SYMBREAK_SCALE` scales the largest Part A size (default 10⁸, floor
//! 262144 — the smallest size whose round 1 already arbitrates to the
//! push gear at `k = 4096`, 8 shards) and the Part B population.

use std::time::Instant;

use symbreak_bench::{scale, section, verdict};
use symbreak_core::rules::{ThreeMajority, TwoMedian, Voter};
use symbreak_core::theory::{theorem5_horizon, theorem5_support_cap};
use symbreak_core::{Configuration, UpdateRule, VectorStep};
use symbreak_runtime::{Cluster, ClusterConfig, ShardRepr};
use symbreak_stats::table::fmt_f64;
use symbreak_stats::Table;

const K_COLORS: u64 = 4096;
const GAMMA: f64 = 3.0;
const SHARDS: usize = 8;

fn sweep_sizes(n_max: u64) -> Vec<u64> {
    // Every size must start in the push gear (occ · shards² ≤ n·h) and
    // in the 2ℓ-dominated cap regime (n/k ≥ 1.5·ln n), so the horizon
    // and the per-round cost model are the same at every n.
    [n_max / 100, n_max / 10, n_max].into_iter().filter(|&n| n >= 262_144).collect()
}

fn run_paired<R>(
    name: &str,
    rule: R,
    start: &Configuration,
    horizon: u64,
    seed: u64,
) -> (f64, f64, u64)
where
    R: UpdateRule + Clone + Send + Sync,
{
    let mut secs = [0.0f64; 2];
    let mut rounds = [0u64; 2];
    for (i, repr) in [ShardRepr::Histogram, ShardRepr::Agents].into_iter().enumerate() {
        let config = ClusterConfig::new(SHARDS, seed).with_shard_repr(repr);
        let cluster = Cluster::new(rule.clone(), start, config);
        let t = Instant::now();
        let out = cluster.run_horizon(horizon);
        secs[i] = t.elapsed().as_secs_f64();
        rounds[i] = out.rounds_run;
        assert_eq!(out.final_config.n(), start.n(), "{name}: mass conserved");
    }
    // Same seed, same law; early consensus may stop either run short, so
    // report the realized rounds alongside the wall clock.
    (secs[0], secs[1], rounds[0].min(rounds[1]))
}

/// Times `f` adaptively (≥ 60 ms of repetitions) and returns ns/iter.
fn bench_ns(mut f: impl FnMut()) -> f64 {
    f(); // warm-up
    let budget = std::time::Duration::from_millis(60);
    let start = Instant::now();
    let mut iters = 0u64;
    while start.elapsed() < budget {
        f();
        iters += 1;
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

fn main() {
    println!("# E23: condensed histogram shards — Theorem-5 horizon at n >= 1e8, paired speedups");

    // ---------------- Part A: the n-independent sweep ----------------
    let n_max = ((100_000_000.0 * scale()).round() as u64).max(262_144);
    let sizes = sweep_sizes(n_max);
    // Breaking round per size, `never` as u64::MAX for the monotonicity
    // check below.
    let mut broke_rounds: Vec<u64> = Vec::new();
    let mut per_round_us: Vec<f64> = Vec::new();

    section(&format!(
        "Part A: 3-Majority, uniform k = {K_COLORS} start, {SHARDS} shards, condensed push gear"
    ));
    let mut table = Table::new(vec![
        "n",
        "ell'",
        "horizon",
        "rounds run",
        "cap broken @",
        "consensus @",
        "us/round",
        "entries/round",
    ]);
    for (i, &n) in sizes.iter().enumerate() {
        let ell = n / K_COLORS;
        let ell_prime = theorem5_support_cap(ell, GAMMA, n);
        let horizon = (theorem5_horizon(n, ell_prime, GAMMA).floor() as u64).max(4);
        let start = Configuration::uniform(n, K_COLORS as usize);
        let config = ClusterConfig::new(SHARDS, 2300 + i as u64);
        let cluster = Cluster::new(ThreeMajority, &start, config);
        let t = Instant::now();
        let out = cluster.run_horizon(horizon);
        let secs = t.elapsed().as_secs_f64();
        let us_round = secs * 1e6 / out.rounds_run as f64;
        per_round_us.push(us_round);

        // Theorem 5 would pin max support below ell' for the whole
        // horizon; the comply rule bursts through it, later and later
        // as n grows (the √(k/n) relative fluctuation shrinks).
        let broke_at =
            out.trace.rounds().iter().find(|r| r.max_support > ell_prime).map(|r| r.round);
        broke_rounds.push(broke_at.unwrap_or(u64::MAX));
        table.row(vec![
            n.to_string(),
            ell_prime.to_string(),
            horizon.to_string(),
            out.rounds_run.to_string(),
            broke_at.map_or_else(|| "never".into(), |r| r.to_string()),
            out.consensus_round.map_or_else(|| "-".into(), |r| r.to_string()),
            fmt_f64(us_round),
            fmt_f64(out.total_messages as f64 / out.rounds_run as f64),
        ]);
    }
    println!("{table}");

    // The symmetry-breaking shape: broken at the smallest size, and
    // monotonically later as n grows (never = MAX sorts last).
    let smallest_broke = broke_rounds.first().is_some_and(|&r| r != u64::MAX);
    let breaking_monotone = broke_rounds.windows(2).all(|w| w[0] <= w[1]);

    // The point of condensation: per-round cost constant while n spans
    // decades. Allow a generous band for allocator/cache noise — the
    // agent-backed form would scale linearly (100x across this sweep).
    let mut band_ok = true;
    if per_round_us.len() >= 2 {
        let lo = per_round_us.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = per_round_us.iter().cloned().fold(0.0, f64::max);
        let n_ratio = *sizes.last().unwrap() as f64 / sizes[0] as f64;
        band_ok = hi / lo < 5.0;
        println!(
            "per-round band: {:.1}–{:.1} us/round ({:.2}x) while n grows {:.0}x",
            lo,
            hi,
            hi / lo,
            n_ratio
        );
    }

    // ---------------- Part B: paired condensed vs agents ----------------
    // Scales down for smoke runs but never up: Part B exists to pair
    // against the agent-backed baseline, which is exactly what stops
    // being runnable past ~1e6 (upscaled sweeps belong to Part A).
    let n_b = ((1_000_000.0 * scale().min(1.0)).round() as u64).max(8_192);
    let horizon_b = 300u64;
    section(&format!(
        "Part B: paired Histogram vs Agents, k = n = {n_b} singletons, horizon {horizon_b}"
    ));
    let start_b = Configuration::singletons(n_b);
    let start_u = Configuration::uniform(n_b, K_COLORS.min(n_b / 16) as usize);
    let mut table = Table::new(vec!["workload", "access", "condensed s", "agents s", "speedup"]);
    let mut best_multiset_speedup = 0.0f64;
    // (name, access, counts toward the Multiset floor?, condensed s, agents s, rounds)
    let mut pairs: Vec<(String, &str, bool, f64, f64, u64)> = Vec::new();
    {
        let (c, a, r) = run_paired("3-Majority", ThreeMajority, &start_b, horizon_b, 4242);
        pairs.push(("3-Majority singletons".into(), "Multiset", true, c, a, r));
    }
    {
        let (c, a, r) = run_paired("2-Median", TwoMedian, &start_b, horizon_b, 4243);
        pairs.push(("2-Median singletons".into(), "Multiset", true, c, a, r));
    }
    {
        let (c, a, r) = run_paired("Voter", Voter, &start_b, horizon_b, 4244);
        pairs.push(("Voter singletons".into(), "SinglePeer", false, c, a, r));
    }
    {
        // The pure push-gear regime (k << n): every round is closed-form
        // on the condensed side. This is the regime condensation
        // targets, and the row that carries the >= 2x Multiset floor.
        // The k = n singleton rows above spend their rounds in the
        // diverse pull gear; E25's grouped consume lifted them from the
        // 0.18–0.63x this experiment originally recorded, and E25 Part B
        // enforces their >= 1x floor at each rule's own scale — here
        // they are informational.
        let (c, a, r) = run_paired("3-Majority uniform", ThreeMajority, &start_u, horizon_b, 4245);
        pairs.push((
            format!("3-Majority uniform k={}", start_u.num_colors()),
            "Multiset",
            true,
            c,
            a,
            r,
        ));
    }
    for (name, access, counts, c, a, rounds) in &pairs {
        let speedup = a / c;
        if *counts {
            best_multiset_speedup = best_multiset_speedup.max(speedup);
        }
        table.row(vec![
            format!("{name} ({rounds}r)"),
            access.to_string(),
            fmt_f64(*c),
            fmt_f64(*a),
            format!("{speedup:.2}x"),
        ]);
    }
    println!("{table}");
    println!(
        "best Multiset speedup at n = {n_b}: {best_multiset_speedup:.2}x (acceptance floor 2x at \
         full scale)"
    );

    // ---------------- Part C: 2-Median hot-path scaling ----------------
    section("Part C: 2-Median vector step, prefix-sum/CDF cascade scaling");
    use rand::SeedableRng as _;
    let mut rng = symbreak_sim::rng::Pcg64::seed_from_u64(9);
    let d_lo = 2_048usize;
    let d_hi = 8_192usize;
    let c_lo = Configuration::uniform(64 * d_lo as u64, d_lo);
    let c_hi = Configuration::uniform(64 * d_hi as u64, d_hi);
    let ns_lo = bench_ns(|| {
        let _ = TwoMedian.vector_step(&c_lo, &mut rng);
    });
    let ns_hi = bench_ns(|| {
        let _ = TwoMedian.vector_step(&c_hi, &mut rng);
    });
    // T(d) ~ d^e over a 4x occupancy growth (n grows with d so the O(n)
    // ball-drop term scales linearly too); the old all-pairs form sat at
    // e = 2, the cascade at ~1 + o(1).
    let exponent = (ns_hi / ns_lo).ln() / 4.0f64.ln();
    println!(
        "occ {d_lo}: {:.2} us/step; occ {d_hi}: {:.2} us/step; scaling exponent {exponent:.2}",
        ns_lo / 1e3,
        ns_hi / 1e3
    );
    let cascade_ok = exponent < 1.6;

    let enforce_speedup = scale() >= 0.999;
    verdict(
        "E23",
        "condensed shards sweep the Theorem-5 horizon with n-independent per-round cost while \
         3-Majority's cap-breaking round grows with n, beat the agent baseline >= 2x on a \
         Multiset workload at full scale, and the 2-Median step scales sub-quadratically",
        smallest_broke
            && breaking_monotone
            && band_ok
            && cascade_ok
            && (!enforce_speedup || best_multiset_speedup >= 2.0),
    );
}
