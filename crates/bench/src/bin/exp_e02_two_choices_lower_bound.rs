//! E2 — Theorem 1/5: from configurations with maximal support
//! `ℓ = O(log n)`, 2-Choices needs `Ω(n / log n)` rounds; in particular no
//! color exceeds `ℓ' = max(2ℓ, γ log n)` for `n/(γ ℓ')` rounds w.h.p.
//!
//! Regenerates two series from the n-color configuration:
//! (a) the support-cap check: max support after `n/(γ ℓ')` rounds, and
//! (b) the consensus time, whose growth exponent should be near 1
//!     (near-linear), in contrast to E1's ≈ 0.75.

use symbreak_bench::{consensus_times, scaled_trials, section, verdict, HeadlineRule};
use symbreak_core::theory::{theorem5_horizon, theorem5_support_cap};
use symbreak_core::{Configuration, Engine, VectorEngine};
use symbreak_sim::run_trials;
use symbreak_stats::table::fmt_f64;
use symbreak_stats::{fit_power_law, Summary, Table};

fn main() {
    println!("# E2: 2-Choices is almost-linear from low-support starts (Theorem 5)");
    let gamma = 3.0; // the paper requires γ "sufficiently large"; 3 already shows a long horizon
    let trials = scaled_trials(10);

    section("Support cap: max support after the Theorem-5 horizon");
    let mut cap_table = Table::new(vec![
        "n",
        "ell' = max(2, γ·ln n)",
        "horizon n/(γ·ell')",
        "mean max support at horizon",
        "trials with support > ell'",
    ]);
    let sizes: Vec<u64> = (10..=15).map(|e| 1u64 << e).collect();
    let mut cap_ok = true;
    for (i, &n) in sizes.iter().enumerate() {
        let ell_prime = theorem5_support_cap(1, gamma, n);
        let horizon = theorem5_horizon(n, ell_prime, gamma).floor() as u64;
        let results = run_trials(trials, 200 + i as u64, move |_t, s| {
            let start = Configuration::singletons(n);
            let mut engine =
                VectorEngine::new(symbreak_core::rules::TwoChoices, start, s).with_compaction();
            for _ in 0..horizon {
                engine.step();
            }
            engine.max_support()
        });
        let violations = results.iter().filter(|&&m| m > ell_prime).count();
        cap_ok &= violations == 0;
        let s = Summary::of_counts(&results);
        cap_table.row(vec![
            n.to_string(),
            ell_prime.to_string(),
            horizon.to_string(),
            fmt_f64(s.mean()),
            format!("{violations}/{trials}"),
        ]);
    }
    println!("{cap_table}");

    section("Consensus time growth (near-linear)");
    let mut time_table = Table::new(vec!["n", "mean rounds", "n/ln n"]);
    let sizes: Vec<u64> = (8..=12).map(|e| 1u64 << e).collect();
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for (i, &n) in sizes.iter().enumerate() {
        let start = Configuration::singletons(n);
        let times = consensus_times(HeadlineRule::TwoChoices, &start, trials, 300 + i as u64);
        let s = Summary::of_counts(&times);
        xs.push(n as f64);
        ys.push(s.mean());
        time_table.row(vec![n.to_string(), fmt_f64(s.mean()), fmt_f64(n as f64 / (n as f64).ln())]);
    }
    println!("{time_table}");
    let fit = fit_power_law(&xs, &ys);
    println!(
        "fitted growth: T(n) ≈ {:.3} · n^{:.3}   (R² = {:.4})",
        fit.constant, fit.exponent, fit.r_squared
    );
    println!("paper shape:   T(n) = Ω(n / log n)  (exponent → 1)");

    let near_linear = fit.exponent > 0.8;
    verdict(
        "E2",
        "2-Choices respects the Theorem-5 support cap and its consensus time grows near-linearly",
        cap_ok && near_linear,
    );
}
