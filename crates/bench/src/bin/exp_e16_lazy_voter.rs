//! E16 — the Lemma 3 laziness remark, quantified. \[BGKMT16\]'s analysis
//! needs the lazy Voter (act with probability 1/2); the paper's proof
//! handles the fully synchronous process. How much does laziness cost?
//!
//! In the coalescing dual on K_n a half-lazy pair meets at rate
//! `(p² + 2p(1−p))/n = 3/(4n)` per round vs `1/n` when fully active, so
//! the slowdown is 4/3 — not the naive 1/p = 2. The harness measures the
//! slowdown across an activity grid and checks the `1/(2p − p²)` shape.

use symbreak_bench::{scaled_trials, section, verdict};
use symbreak_core::rules::LazyVoter;
use symbreak_core::{run_to_consensus, Configuration, RunOptions, VectorEngine};
use symbreak_sim::run_trials;
use symbreak_stats::table::fmt_f64;
use symbreak_stats::{Summary, Table};

fn mean_consensus(p: f64, n: u64, trials: u64, seed: u64) -> f64 {
    let times = run_trials(trials, seed, move |_t, s| {
        let start = Configuration::singletons(n);
        let mut e = VectorEngine::new(LazyVoter::new(p), start, s).with_compaction();
        run_to_consensus(&mut e, &RunOptions { max_rounds: u64::MAX, record_trace: false })
            .consensus_round
            .expect("consensus")
    });
    Summary::of_counts(&times).mean()
}

fn main() {
    println!("# E16: the cost of laziness in Voter (Lemma 3 discussion)");
    let n = 1024u64;
    // Shape test against a ±25% band: below ~30 trials the mean of the
    // heavy-tailed consensus time is too noisy, so floor the count even
    // at smoke scales.
    let trials = scaled_trials(40).max(32);

    section("Mean consensus time vs activity p (n = 1024, singleton start)");
    let mut table = Table::new(vec!["p", "mean rounds", "slowdown vs p=1", "predicted 1/(2p−p²)"]);
    let base = mean_consensus(1.0, n, trials, 3000);
    let mut shape_ok = true;
    for (i, &p) in [1.0f64, 0.75, 0.5, 0.25].iter().enumerate() {
        let mean = if p == 1.0 { base } else { mean_consensus(p, n, trials, 3010 + i as u64) };
        let slowdown = mean / base;
        // Pair-meeting rate for activity p: (p² + 2p(1−p))/n = (2p − p²)/n.
        let predicted = 1.0 / (2.0 * p - p * p);
        shape_ok &= (slowdown - predicted).abs() < 0.25 * predicted;
        table.row(vec![fmt_f64(p), fmt_f64(mean), fmt_f64(slowdown), fmt_f64(predicted)]);
    }
    println!("{table}");
    println!("(the naive 1/p rescaling would predict 2x at p = 1/2; the dual");
    println!(" coalescence argument predicts 4/3, which is what we measure)");

    verdict(
        "E16",
        "lazy-Voter slowdown follows the 1/(2p − p²) coalescing-pair rate, not 1/p",
        shape_ok,
    );
}
