//! E10 — Conjecture 1: the h-Majority hierarchy. `(h+1)`-Majority should
//! be stochastically faster than `h`-Majority; the paper proves it for
//! `h ∈ {1, 2, 3}` (Voter = 1-/2-Majority ⪯ 3-Majority via Lemma 2) and
//! conjectures the rest.
//!
//! Measures mean consensus times for `h ∈ {1..6}` from a uniform k-color
//! configuration using the agent-level engine (the exact α enumeration is
//! exponential in h). PASS = monotone non-increasing means (within noise)
//! and a strict drop from h=2 (Voter) to h=3 (the proven part).

use symbreak_bench::{scaled_trials, section, verdict};
use symbreak_core::rules::HMajority;
use symbreak_core::{AgentEngine, Configuration, Engine};
use symbreak_sim::run_trials;
use symbreak_stats::table::fmt_f64;
use symbreak_stats::{Summary, Table};

fn main() {
    println!("# E10: the h-Majority hierarchy (Conjecture 1, empirical)");
    let n: u64 = 2048;
    let k = 32;
    let trials = scaled_trials(20);
    let start = Configuration::uniform(n, k);

    section("Mean consensus time vs h (agent engine, n = 2048, k = 32 uniform)");
    let mut table = Table::new(vec!["h", "mean rounds", "sd", "p95"]);
    let mut means = Vec::new();
    for h in 1..=6usize {
        let start = start.clone();
        let times = run_trials(trials, 1700 + h as u64, move |_t, s| {
            let mut engine = AgentEngine::new(HMajority::new(h), &start, s);
            let mut rounds = 0u64;
            while !engine.is_consensus() {
                engine.step();
                rounds += 1;
            }
            rounds
        });
        let s = Summary::of_counts(&times);
        means.push(s.mean());
        table.row(vec![
            h.to_string(),
            fmt_f64(s.mean()),
            fmt_f64(s.std_dev()),
            fmt_f64(s.quantile(0.95)),
        ]);
    }
    println!("{table}");
    println!("(h = 1, 2 are both exactly Voter; the paper proves Voter ⪰st 3-Majority)");

    // Monotone non-increasing within 10% noise slack; strict drop 2 -> 3.
    let mut monotone = true;
    for w in means.windows(2) {
        monotone &= w[1] <= w[0] * 1.10;
    }
    let proven_drop = means[2] < means[1] * 0.8;
    verdict(
        "E10",
        "consensus time is monotone non-increasing in h, with a strict Voter→3-Majority drop",
        monotone && proven_drop,
    );
}
