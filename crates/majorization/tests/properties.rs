//! Property-based tests of the majorization laws.

use proptest::prelude::*;
use symbreak_majorization::birkhoff::{birkhoff_decompose, recompose};
use symbreak_majorization::schur::{neg_entropy, power_sum, top_j_sum};
use symbreak_majorization::transfer::{t_transform_apply, transfer_chain};
use symbreak_majorization::vector::{
    compare, lorenz_prefix_sums, majorizes, sorted_desc, Majorization,
};

fn vec_strategy(d: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(0.0f64..10.0, d)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn majorization_is_reflexive(x in vec_strategy(6)) {
        prop_assert!(majorizes(&x, &x));
    }

    #[test]
    fn majorization_is_antisymmetric_up_to_sorting(x in vec_strategy(5), y in vec_strategy(5)) {
        if majorizes(&x, &y) && majorizes(&y, &x) {
            let sx = sorted_desc(&x);
            let sy = sorted_desc(&y);
            for (a, b) in sx.iter().zip(&sy) {
                prop_assert!((a - b).abs() < 1e-6, "equivalent vectors must share sorted profile");
            }
        }
    }

    #[test]
    fn majorization_is_transitive(x in vec_strategy(5), seed in 0u64..1000) {
        // Build y ⪯ x and z ⪯ y by Robin-Hood transfers; check z ⪯ x.
        let mut rng = seed;
        let mut next = move || { rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1); (rng >> 33) as usize };
        let transfer = |v: &[f64], i: usize, j: usize| -> Vec<f64> {
            let (hi, lo) = if v[i] >= v[j] { (i, j) } else { (j, i) };
            let mut out = v.to_vec();
            let delta = (v[hi] - v[lo]) / 4.0;
            out[hi] -= delta;
            out[lo] += delta;
            out
        };
        let y = transfer(&x, next() % 5, next() % 5);
        let z = transfer(&y, next() % 5, next() % 5);
        prop_assert!(majorizes(&x, &y));
        prop_assert!(majorizes(&y, &z));
        prop_assert!(majorizes(&x, &z), "transitivity violated");
    }

    #[test]
    fn transfer_chain_reaches_any_majorized_target(x in vec_strategy(6)) {
        // The uniform vector with the same total is always majorized.
        let total: f64 = x.iter().sum();
        let uniform = vec![total / 6.0; 6];
        let (chain, reached) = transfer_chain(&x, &uniform, 1e-9).expect("x majorizes uniform");
        prop_assert!(chain.len() <= 12);
        for (a, b) in reached.iter().zip(&uniform) {
            prop_assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn t_transform_never_increases(x in vec_strategy(6), i in 0usize..6, j in 0usize..6, lambda in 0.0f64..=1.0) {
        if i != j {
            let y = t_transform_apply(&x, i, j, lambda);
            prop_assert!(majorizes(&x, &y));
            let sx: f64 = x.iter().sum();
            let sy: f64 = y.iter().sum();
            prop_assert!((sx - sy).abs() < 1e-9, "mass preserved");
        }
    }

    #[test]
    fn schur_functions_respect_constructed_pairs(x in vec_strategy(6), lambda in 0.0f64..=1.0) {
        let y = t_transform_apply(&x, 0, 5, lambda);
        // x ⪰ y, so every Schur-convex value must not increase.
        for j in 1..=6 {
            prop_assert!(top_j_sum(&x, j) + 1e-9 >= top_j_sum(&y, j));
        }
        prop_assert!(power_sum(&x, 2.0) + 1e-9 >= power_sum(&y, 2.0));
        prop_assert!(power_sum(&x, 3.0) + 1e-9 >= power_sum(&y, 3.0));
    }

    #[test]
    fn neg_entropy_schur_convex_on_probability_vectors(x in vec_strategy(5), lambda in 0.0f64..=1.0) {
        let total: f64 = x.iter().sum();
        prop_assume!(total > 1e-6);
        let p: Vec<f64> = x.iter().map(|v| v / total).collect();
        let q = t_transform_apply(&p, 1, 3, lambda);
        prop_assert!(neg_entropy(&p) + 1e-9 >= neg_entropy(&q));
    }

    #[test]
    fn lorenz_prefix_sums_are_concave_increments(x in vec_strategy(8)) {
        // Sorted-descending prefix sums have non-increasing increments.
        let p = lorenz_prefix_sums(&x);
        for w in p.windows(3) {
            let d1 = w[1] - w[0];
            let d2 = w[2] - w[1];
            prop_assert!(d2 <= d1 + 1e-9);
        }
    }

    #[test]
    fn compare_agrees_with_majorizes(x in vec_strategy(5), y in vec_strategy(5)) {
        let c = compare(&x, &y);
        match c {
            Majorization::Majorizes => prop_assert!(majorizes(&x, &y) && !majorizes(&y, &x)),
            Majorization::MajorizedBy => prop_assert!(!majorizes(&x, &y) && majorizes(&y, &x)),
            Majorization::Equivalent => prop_assert!(majorizes(&x, &y) && majorizes(&y, &x)),
            Majorization::Incomparable => prop_assert!(!majorizes(&x, &y) && !majorizes(&y, &x)),
        }
    }

    #[test]
    fn birkhoff_round_trip_on_transfer_matrices(lambda in 0.0f64..=1.0) {
        // The T-transform matrix on coordinates (0,1) in R^3.
        let m = vec![
            vec![lambda, 1.0 - lambda, 0.0],
            vec![1.0 - lambda, lambda, 0.0],
            vec![0.0, 0.0, 1.0],
        ];
        let terms = birkhoff_decompose(&m, 1e-9).expect("DS");
        let back = recompose(&terms, 3);
        for (ra, rb) in m.iter().zip(&back) {
            for (a, b) in ra.iter().zip(rb) {
                prop_assert!((a - b).abs() < 1e-6);
            }
        }
        let total: f64 = terms.iter().map(|t| t.weight).sum();
        prop_assert!((total - 1.0).abs() < 1e-6);
    }
}
