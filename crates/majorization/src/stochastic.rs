//! Empirical stochastic majorization (Definition 3 of the paper).
//!
//! `X ⪯_st Y` iff `E[φ(X)] ≤ E[φ(Y)]` for all Schur-convex `φ`. This is a
//! distributional statement that cannot be verified exactly from samples, so
//! this module estimates it over the [`crate::schur::standard_family`] of
//! test functions with confidence margins, and provides the Proposition-1
//! sanity check used in the paper's coupling argument: probability vectors
//! that majorize produce multinomials that stochastically majorize.

use crate::schur::SchurFn;

/// Result of an empirical stochastic-majorization comparison for one test
/// function.
#[derive(Debug, Clone)]
pub struct SchurComparison {
    /// Name of the Schur-convex test function.
    pub name: String,
    /// Sample mean of `φ(X)`.
    pub mean_x: f64,
    /// Sample mean of `φ(Y)`.
    pub mean_y: f64,
    /// Pooled standard error of the difference `mean_y − mean_x`.
    pub std_err: f64,
}

impl SchurComparison {
    /// `mean_y − mean_x`; positive values support `X ⪯_st Y`.
    pub fn gap(&self) -> f64 {
        self.mean_y - self.mean_x
    }

    /// Whether the comparison supports `X ⪯_st Y` at `z` standard errors:
    /// the gap must exceed `−z·SE` (i.e. no significant violation).
    pub fn supports_dominance(&self, z: f64) -> bool {
        self.gap() >= -z * self.std_err
    }
}

/// Verdict of [`check_stochastic_majorization`].
#[derive(Debug, Clone)]
pub struct StochasticMajorizationReport {
    /// Per-test-function comparisons.
    pub comparisons: Vec<SchurComparison>,
    /// Number of samples of each variable.
    pub samples: usize,
}

impl StochasticMajorizationReport {
    /// True when no test function shows a significant violation at `z`
    /// standard errors.
    pub fn holds(&self, z: f64) -> bool {
        self.comparisons.iter().all(|c| c.supports_dominance(z))
    }

    /// The most-violating comparison (smallest normalized gap), if any.
    pub fn worst(&self) -> Option<&SchurComparison> {
        self.comparisons.iter().min_by(|a, b| {
            let na = if a.std_err > 0.0 { a.gap() / a.std_err } else { a.gap() };
            let nb = if b.std_err > 0.0 { b.gap() / b.std_err } else { b.gap() };
            na.partial_cmp(&nb).expect("no NaN in comparison gaps")
        })
    }
}

/// Estimates whether `X ⪯_st Y` from paired sample sets, using the supplied
/// family of Schur-convex test functions.
///
/// `xs` and `ys` are independent sample collections (not necessarily equal
/// length). The standard error is the usual two-sample pooled SE of the
/// difference of means.
///
/// # Panics
/// Panics if either sample set is empty or the family is empty.
pub fn check_stochastic_majorization(
    xs: &[Vec<f64>],
    ys: &[Vec<f64>],
    family: &[SchurFn],
) -> StochasticMajorizationReport {
    assert!(!xs.is_empty() && !ys.is_empty(), "need samples on both sides");
    assert!(!family.is_empty(), "need at least one test function");
    let comparisons = family
        .iter()
        .map(|f| {
            let vx: Vec<f64> = xs.iter().map(|x| f.eval(x)).collect();
            let vy: Vec<f64> = ys.iter().map(|y| f.eval(y)).collect();
            let (mx, sx) = mean_var(&vx);
            let (my, sy) = mean_var(&vy);
            let std_err = (sx / vx.len() as f64 + sy / vy.len() as f64).sqrt();
            SchurComparison { name: f.name().to_string(), mean_x: mx, mean_y: my, std_err }
        })
        .collect();
    StochasticMajorizationReport { comparisons, samples: xs.len().min(ys.len()) }
}

fn mean_var(v: &[f64]) -> (f64, f64) {
    let n = v.len() as f64;
    let mean = v.iter().sum::<f64>() / n;
    if v.len() < 2 {
        return (mean, 0.0);
    }
    let var = v.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
    (mean, var)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schur::standard_family;

    #[test]
    fn degenerate_distributions_compare_exactly() {
        // X always uniform, Y always consensus: Y stochastically majorizes X.
        let xs = vec![vec![2.0, 2.0, 2.0]; 50];
        let ys = vec![vec![6.0, 0.0, 0.0]; 50];
        let report = check_stochastic_majorization(&xs, &ys, &standard_family(3));
        assert!(report.holds(3.0));
        // And the reverse direction must fail decisively.
        let rev = check_stochastic_majorization(&ys, &xs, &standard_family(3));
        assert!(!rev.holds(3.0));
    }

    #[test]
    fn identical_distributions_are_mutually_dominant() {
        let xs = vec![vec![3.0, 2.0, 1.0]; 30];
        let report = check_stochastic_majorization(&xs, &xs, &standard_family(3));
        assert!(report.holds(1.0));
        for c in &report.comparisons {
            assert!(c.gap().abs() < 1e-12);
        }
    }

    #[test]
    fn worst_comparison_identifies_violation() {
        let xs = vec![vec![6.0, 0.0, 0.0]; 20];
        let ys = vec![vec![2.0, 2.0, 2.0]; 20];
        let report = check_stochastic_majorization(&xs, &ys, &standard_family(3));
        let worst = report.worst().expect("non-empty family");
        assert!(worst.gap() < 0.0, "consensus vs uniform must violate");
    }

    #[test]
    #[should_panic(expected = "need samples")]
    fn empty_samples_panic() {
        check_stochastic_majorization(&[], &[vec![1.0]], &standard_family(2));
    }

    #[test]
    fn mean_var_single_sample() {
        let (m, v) = mean_var(&[4.0]);
        assert_eq!(m, 4.0);
        assert_eq!(v, 0.0);
    }
}
