//! Vector majorization: the preorder the paper uses to measure closeness to
//! consensus.
//!
//! For `x, y ∈ R^d` with equal totals, `x` *majorizes* `y` (written `x ⪰ y`)
//! if for every prefix length `l` the sum of the `l` largest components of
//! `x` is at least the sum of the `l` largest components of `y`. The
//! single-color (consensus) configuration is maximal and the uniform
//! configuration is minimal with respect to `⪰`.

use crate::DEFAULT_EPS;

/// Three-way outcome of comparing two vectors under majorization.
///
/// Majorization is only a *pre*order: two vectors can be equivalent (equal
/// sorted profiles) or incomparable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Majorization {
    /// `x ⪰ y` and `y ⪰ x`: identical sorted profiles.
    Equivalent,
    /// `x ⪰ y` strictly (some prefix sum is strictly larger).
    Majorizes,
    /// `y ⪰ x` strictly.
    MajorizedBy,
    /// Neither relation holds, or totals differ.
    Incomparable,
}

/// Returns the components of `x` sorted in non-increasing order (`x↓`).
///
/// # Example
/// ```
/// let d = symbreak_majorization::vector::sorted_desc(&[1.0, 3.0, 2.0]);
/// assert_eq!(d, vec![3.0, 2.0, 1.0]);
/// ```
pub fn sorted_desc(x: &[f64]) -> Vec<f64> {
    let mut v = x.to_vec();
    v.sort_by(|a, b| b.partial_cmp(a).expect("NaN in majorization input"));
    v
}

/// Prefix sums of the sorted-descending view: `P_l = Σ_{i≤l} x↓_i`.
///
/// `P_0 = 0` is included, so the result has `x.len() + 1` entries and the
/// last entry is the total mass `‖x‖₁`.
pub fn lorenz_prefix_sums(x: &[f64]) -> Vec<f64> {
    let d = sorted_desc(x);
    let mut out = Vec::with_capacity(d.len() + 1);
    let mut acc = 0.0;
    out.push(0.0);
    for v in d {
        acc += v;
        out.push(acc);
    }
    out
}

/// Tests `x ⪰ y` with tolerance `eps` on each prefix-sum comparison and on
/// the equal-total requirement.
///
/// Vectors of different lengths are compared by implicitly padding the
/// shorter one with zeros (the paper embeds configurations in `N^n` with
/// trailing zeros, so this matches its convention).
pub fn majorizes_eps(x: &[f64], y: &[f64], eps: f64) -> bool {
    let xs = lorenz_prefix_sums(x);
    let ys = lorenz_prefix_sums(y);
    let total_x = *xs.last().expect("non-empty prefix sums");
    let total_y = *ys.last().expect("non-empty prefix sums");
    if (total_x - total_y).abs() > eps {
        return false;
    }
    let len = xs.len().max(ys.len());
    for l in 1..len {
        let px = if l < xs.len() { xs[l] } else { total_x };
        let py = if l < ys.len() { ys[l] } else { total_y };
        if px + eps < py {
            return false;
        }
    }
    true
}

/// Tests `x ⪰ y` with the crate-default tolerance [`DEFAULT_EPS`].
///
/// # Example
/// ```
/// use symbreak_majorization::vector::majorizes;
/// assert!(majorizes(&[4.0, 1.0, 1.0], &[2.0, 2.0, 2.0]));
/// ```
pub fn majorizes(x: &[f64], y: &[f64]) -> bool {
    majorizes_eps(x, y, DEFAULT_EPS)
}

/// Full three-way comparison of `x` and `y` under majorization.
pub fn compare(x: &[f64], y: &[f64]) -> Majorization {
    compare_eps(x, y, DEFAULT_EPS)
}

/// Three-way comparison with explicit tolerance.
pub fn compare_eps(x: &[f64], y: &[f64], eps: f64) -> Majorization {
    let xy = majorizes_eps(x, y, eps);
    let yx = majorizes_eps(y, x, eps);
    match (xy, yx) {
        (true, true) => Majorization::Equivalent,
        (true, false) => Majorization::Majorizes,
        (false, true) => Majorization::MajorizedBy,
        (false, false) => Majorization::Incomparable,
    }
}

/// Weak sub-majorization `x ⪰_w y`: prefix sums of `x↓` dominate those of
/// `y↓` but totals need not match.
pub fn weakly_submajorizes(x: &[f64], y: &[f64], eps: f64) -> bool {
    let xs = lorenz_prefix_sums(x);
    let ys = lorenz_prefix_sums(y);
    let total_x = *xs.last().expect("non-empty");
    let total_y = *ys.last().expect("non-empty");
    let len = xs.len().max(ys.len());
    for l in 1..len {
        let px = if l < xs.len() { xs[l] } else { total_x };
        let py = if l < ys.len() { ys[l] } else { total_y };
        if px + eps < py {
            return false;
        }
    }
    let _ = total_y;
    true
}

/// The maximal element for mass `m` in dimension `d`: `(m, 0, …, 0)`.
pub fn top_element(m: f64, d: usize) -> Vec<f64> {
    assert!(d >= 1, "dimension must be positive");
    let mut v = vec![0.0; d];
    v[0] = m;
    v
}

/// The minimal element for mass `m` in dimension `d`: the uniform vector.
pub fn bottom_element(m: f64, d: usize) -> Vec<f64> {
    assert!(d >= 1, "dimension must be positive");
    vec![m / d as f64; d]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn consensus_majorizes_everything() {
        let top = top_element(10.0, 5);
        for other in [
            vec![2.0, 2.0, 2.0, 2.0, 2.0],
            vec![5.0, 5.0, 0.0, 0.0, 0.0],
            vec![9.0, 1.0, 0.0, 0.0, 0.0],
        ] {
            assert!(majorizes(&top, &other), "top should majorize {other:?}");
        }
    }

    #[test]
    fn uniform_is_minimal() {
        let bot = bottom_element(10.0, 5);
        for other in [
            vec![2.0, 2.0, 2.0, 2.0, 2.0],
            vec![5.0, 5.0, 0.0, 0.0, 0.0],
            vec![3.0, 3.0, 2.0, 1.0, 1.0],
        ] {
            assert!(majorizes(&other, &bot), "{other:?} should majorize bottom");
        }
    }

    #[test]
    fn order_of_components_is_irrelevant() {
        assert!(majorizes(&[1.0, 4.0, 1.0], &[2.0, 2.0, 2.0]));
        assert_eq!(compare(&[1.0, 2.0, 3.0], &[3.0, 2.0, 1.0]), Majorization::Equivalent);
    }

    #[test]
    fn different_totals_are_incomparable() {
        assert!(!majorizes(&[4.0, 1.0], &[2.0, 2.0]));
        assert_eq!(compare(&[4.0, 1.0], &[2.0, 2.0]), Majorization::Incomparable);
    }

    #[test]
    fn incomparable_pair() {
        // Classic: (3,3,0) vs (4,1,1): prefix sums 3,6,6 vs 4,5,6.
        let a = [3.0, 3.0, 0.0];
        let b = [4.0, 1.0, 1.0];
        assert_eq!(compare(&a, &b), Majorization::Incomparable);
    }

    #[test]
    fn strict_majorization_detected() {
        assert_eq!(compare(&[4.0, 2.0, 0.0], &[3.0, 2.0, 1.0]), Majorization::Majorizes);
        assert_eq!(compare(&[3.0, 2.0, 1.0], &[4.0, 2.0, 0.0]), Majorization::MajorizedBy);
    }

    #[test]
    fn padding_with_zeros() {
        // (3,1) vs (2,1,1): same total, prefix sums 3,4,4 vs 2,3,4.
        assert!(majorizes(&[3.0, 1.0], &[2.0, 1.0, 1.0]));
        assert!(!majorizes(&[2.0, 1.0, 1.0], &[3.0, 1.0]));
    }

    #[test]
    fn lorenz_prefix_sums_basic() {
        let p = lorenz_prefix_sums(&[1.0, 3.0, 2.0]);
        assert_eq!(p, vec![0.0, 3.0, 5.0, 6.0]);
    }

    #[test]
    fn weak_submajorization_allows_smaller_total() {
        assert!(weakly_submajorizes(&[4.0, 1.0], &[2.0, 2.0], 1e-12));
        // x's prefixes dominate even though totals differ (5 vs 4).
        assert!(weakly_submajorizes(&[4.0, 1.0], &[2.0, 2.0, 0.0], 1e-12));
        assert!(!weakly_submajorizes(&[1.0, 1.0], &[3.0, 0.0], 1e-12));
    }

    #[test]
    fn tolerance_is_respected() {
        let x = [2.0, 2.0];
        let y = [2.0 + 1e-12, 2.0 - 1e-12];
        assert!(majorizes(&x, &y));
        assert!(majorizes(&y, &x));
    }

    #[test]
    fn reflexive() {
        let x = [3.0, 1.0, 0.5];
        assert_eq!(compare(&x, &x), Majorization::Equivalent);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_input_panics() {
        majorizes(&[f64::NAN, 1.0], &[1.0, 1.0]);
    }
}
