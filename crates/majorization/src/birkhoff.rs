//! Birkhoff–von Neumann decomposition: every doubly stochastic matrix is a
//! convex combination of permutation matrices.
//!
//! This is the structural fact behind "x ⪯ y iff x = Dy for a doubly
//! stochastic D" (Hardy–Littlewood–Pólya): combined with
//! [`crate::transfer`], it certifies majorization both ways. The
//! decomposition proceeds by repeatedly extracting a perfect matching on
//! the positive-support bipartite graph (Kuhn's augmenting-path
//! algorithm) and subtracting the matching scaled by its minimum entry;
//! each step zeroes at least one entry, so at most `n² − 2n + 2` terms
//! are produced.

/// One term of the decomposition: weight times a permutation
/// (`perm[row] = column`).
#[derive(Debug, Clone, PartialEq)]
pub struct PermutationTerm {
    /// Convex weight in `(0, 1]`.
    pub weight: f64,
    /// The permutation, as an image array.
    pub perm: Vec<usize>,
}

/// Error: the input was not doubly stochastic (within tolerance).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NotDoublyStochasticError;

impl std::fmt::Display for NotDoublyStochasticError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "matrix rows/columns do not all sum to 1")
    }
}

impl std::error::Error for NotDoublyStochasticError {}

/// Decomposes a doubly stochastic matrix (row-major) into permutation
/// terms with weights summing to 1 (within `eps`).
///
/// # Errors
/// Returns [`NotDoublyStochasticError`] if a row or column sum deviates
/// from 1 by more than `eps`, or the matrix is not square.
pub fn birkhoff_decompose(
    matrix: &[Vec<f64>],
    eps: f64,
) -> Result<Vec<PermutationTerm>, NotDoublyStochasticError> {
    let n = matrix.len();
    if n == 0 || matrix.iter().any(|row| row.len() != n) {
        return Err(NotDoublyStochasticError);
    }
    for i in 0..n {
        let row: f64 = matrix[i].iter().sum();
        let col: f64 = matrix.iter().map(|r| r[i]).sum();
        if (row - 1.0).abs() > eps || (col - 1.0).abs() > eps {
            return Err(NotDoublyStochasticError);
        }
        if matrix[i].iter().any(|&v| v < -eps) {
            return Err(NotDoublyStochasticError);
        }
    }

    let mut work: Vec<Vec<f64>> = matrix.to_vec();
    let mut terms = Vec::new();
    let mut remaining = 1.0f64;
    // Each extraction zeroes ≥1 entry; n² + 1 iterations is a safe cap.
    for _ in 0..n * n + 1 {
        if remaining <= eps {
            break;
        }
        let Some(perm) = perfect_matching(&work, eps) else {
            break; // numerically exhausted
        };
        let weight =
            perm.iter().enumerate().map(|(r, &c)| work[r][c]).fold(f64::INFINITY, f64::min);
        if weight <= eps {
            break;
        }
        for (r, &c) in perm.iter().enumerate() {
            work[r][c] -= weight;
        }
        remaining -= weight;
        terms.push(PermutationTerm { weight, perm });
    }
    Ok(terms)
}

/// Kuhn's algorithm: perfect matching of rows to columns through entries
/// `> eps`, or `None` if none exists.
fn perfect_matching(matrix: &[Vec<f64>], eps: f64) -> Option<Vec<usize>> {
    let n = matrix.len();
    let mut match_col: Vec<Option<usize>> = vec![None; n]; // col -> row
    for row in 0..n {
        let mut visited = vec![false; n];
        if !augment(matrix, row, eps, &mut visited, &mut match_col) {
            return None;
        }
    }
    let mut perm = vec![0usize; n];
    for (col, row) in match_col.iter().enumerate() {
        perm[row.expect("perfect matching assigns every column")] = col;
    }
    Some(perm)
}

fn augment(
    matrix: &[Vec<f64>],
    row: usize,
    eps: f64,
    visited: &mut [bool],
    match_col: &mut [Option<usize>],
) -> bool {
    for col in 0..matrix.len() {
        if matrix[row][col] > eps && !visited[col] {
            visited[col] = true;
            if match_col[col].is_none()
                || augment(matrix, match_col[col].expect("checked"), eps, visited, match_col)
            {
                match_col[col] = Some(row);
                return true;
            }
        }
    }
    false
}

/// Reconstructs the matrix from its decomposition (for verification).
pub fn recompose(terms: &[PermutationTerm], n: usize) -> Vec<Vec<f64>> {
    let mut out = vec![vec![0.0; n]; n];
    for t in terms {
        for (r, &c) in t.perm.iter().enumerate() {
            out[r][c] += t.weight;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_matrix_close(a: &[Vec<f64>], b: &[Vec<f64>], tol: f64) {
        for (ra, rb) in a.iter().zip(b) {
            for (x, y) in ra.iter().zip(rb) {
                assert!((x - y).abs() < tol, "{a:?} != {b:?}");
            }
        }
    }

    #[test]
    fn identity_decomposes_to_one_term() {
        let m = vec![vec![1.0, 0.0, 0.0], vec![0.0, 1.0, 0.0], vec![0.0, 0.0, 1.0]];
        let terms = birkhoff_decompose(&m, 1e-12).expect("DS");
        assert_eq!(terms.len(), 1);
        assert!((terms[0].weight - 1.0).abs() < 1e-12);
        assert_eq!(terms[0].perm, vec![0, 1, 2]);
    }

    #[test]
    fn uniform_matrix_decomposes_into_n_permutations() {
        let n = 4;
        let m = vec![vec![1.0 / n as f64; n]; n];
        let terms = birkhoff_decompose(&m, 1e-12).expect("DS");
        let total: f64 = terms.iter().map(|t| t.weight).sum();
        assert!((total - 1.0).abs() < 1e-9, "weights sum to {total}");
        assert_matrix_close(&recompose(&terms, n), &m, 1e-9);
        assert!(terms.len() >= n, "needs at least n permutations");
    }

    #[test]
    fn random_ds_matrix_round_trips() {
        // Build a DS matrix as a known convex combination of permutations,
        // decompose, recompose.
        let n = 5;
        let perms = [vec![0usize, 1, 2, 3, 4], vec![1, 2, 3, 4, 0], vec![4, 3, 2, 1, 0]];
        let weights = [0.5, 0.3, 0.2];
        let mut m = vec![vec![0.0; n]; n];
        for (p, w) in perms.iter().zip(weights) {
            for (r, &c) in p.iter().enumerate() {
                m[r][c] += w;
            }
        }
        let terms = birkhoff_decompose(&m, 1e-12).expect("DS");
        assert_matrix_close(&recompose(&terms, n), &m, 1e-9);
        let total: f64 = terms.iter().map(|t| t.weight).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn decomposition_certifies_majorization() {
        // Dx ⪯ x for every DS matrix D: check via the decomposition, since
        // each permutation term preserves the sorted profile.
        use crate::vector::majorizes;
        let m = vec![vec![0.6, 0.3, 0.1], vec![0.3, 0.4, 0.3], vec![0.1, 0.3, 0.6]];
        let terms = birkhoff_decompose(&m, 1e-12).expect("DS");
        assert!(!terms.is_empty());
        let x = [5.0, 2.0, 1.0];
        let y: Vec<f64> = (0..3).map(|r| (0..3).map(|c| m[r][c] * x[c]).sum()).collect();
        assert!(majorizes(&x, &y));
    }

    #[test]
    fn non_square_rejected() {
        let m = vec![vec![1.0, 0.0]];
        assert_eq!(birkhoff_decompose(&m, 1e-12), Err(NotDoublyStochasticError));
    }

    #[test]
    fn non_stochastic_rejected() {
        let m = vec![vec![0.9, 0.0], vec![0.0, 1.0]];
        assert_eq!(birkhoff_decompose(&m, 1e-9), Err(NotDoublyStochasticError));
        let neg = vec![vec![1.5, -0.5], vec![-0.5, 1.5]];
        assert_eq!(birkhoff_decompose(&neg, 1e-9), Err(NotDoublyStochasticError));
    }

    #[test]
    fn swap_matrix_is_a_single_permutation() {
        let m = vec![vec![0.0, 1.0], vec![1.0, 0.0]];
        let terms = birkhoff_decompose(&m, 1e-12).expect("DS");
        assert_eq!(terms.len(), 1);
        assert_eq!(terms[0].perm, vec![1, 0]);
    }
}
