#![warn(missing_docs)]
//! Majorization theory toolkit.
//!
//! This crate implements the machinery from Marshall–Olkin–Arnold,
//! *Inequalities: Theory of Majorization and Its Applications* \[MOA11\],
//! that the paper *"Ignore or Comply? On Breaking Symmetry in Consensus"*
//! (Berenbrink et al., PODC 2017) uses to compare anonymous consensus
//! processes:
//!
//! * [`vector`] — the majorization preorder `x ⪰ y` on real vectors
//!   (Section 2.1 of the paper), weak majorization variants, and partial-sum
//!   (Lorenz) utilities.
//! * [`birkhoff`] — the Birkhoff–von Neumann decomposition of doubly
//!   stochastic matrices into permutation mixtures.
//! * [`transfer`] — the constructive Hardy–Littlewood–Pólya theorem: when
//!   `x ⪯ y`, an explicit chain of Robin-Hood transfers (T-transforms)
//!   carrying `y` to `x`, plus doubly-stochastic averaging.
//! * [`schur`] — Schur-convex functions (Definition: `x ⪰ y ⇒ f(x) ≥ f(y)`),
//!   a library of standard examples, and a randomized Schur–Ostrowski
//!   checker.
//! * [`stochastic`] — stochastic majorization `X ⪯_st Y` (Definition 3 of
//!   the paper) estimated empirically via families of Schur-convex test
//!   functions.
//!
//! # Example
//!
//! ```
//! use symbreak_majorization::vector::majorizes;
//!
//! // Consensus majorizes every other configuration of the same total mass.
//! let consensus = [6.0, 0.0, 0.0];
//! let spread = [2.0, 2.0, 2.0];
//! assert!(majorizes(&consensus, &spread));
//! assert!(!majorizes(&spread, &consensus));
//! ```

pub mod birkhoff;
pub mod schur;
pub mod stochastic;
pub mod transfer;
pub mod vector;

pub use birkhoff::{birkhoff_decompose, PermutationTerm};
pub use schur::{is_schur_convex_on_samples, SchurFn};
pub use transfer::{transfer_chain, TTransform};
pub use vector::{majorizes, majorizes_eps, Majorization};

/// Default absolute tolerance used by floating-point majorization checks.
///
/// Partial sums of probability vectors accumulate rounding error on the
/// order of `n * machine-epsilon`; `1e-9` is far above that for the vector
/// lengths used in this crate while far below any meaningful violation.
pub const DEFAULT_EPS: f64 = 1e-9;
