//! Schur-convex functions and a randomized Schur–Ostrowski checker.
//!
//! A function `f : R^d → R` is *Schur-convex* if `x ⪰ y ⇒ f(x) ≥ f(y)`.
//! Stochastic majorization (Definition 3 of the paper) quantifies over all
//! Schur-convex test functions, so this module provides a representative
//! library of them — in particular the top-`j` partial sums, which are
//! exactly the functions that *generate* the majorization preorder (see the
//! footnote to the proof of Theorem 3 in the paper).

use rand::Rng;

use crate::vector::sorted_desc;

/// Shared closure type backing a [`SchurFn`].
type SchurClosure = std::sync::Arc<dyn Fn(&[f64]) -> f64 + Send + Sync>;

/// A named Schur-convex test function.
#[derive(Clone)]
pub struct SchurFn {
    name: String,
    f: SchurClosure,
}

impl std::fmt::Debug for SchurFn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SchurFn").field("name", &self.name).finish()
    }
}

impl SchurFn {
    /// Wraps a closure as a named Schur-convex function.
    ///
    /// The caller asserts Schur-convexity; use
    /// [`is_schur_convex_on_samples`] to sanity-check a candidate.
    pub fn new(name: impl Into<String>, f: impl Fn(&[f64]) -> f64 + Send + Sync + 'static) -> Self {
        Self { name: name.into(), f: std::sync::Arc::new(f) }
    }

    /// The function's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Evaluates the function.
    pub fn eval(&self, x: &[f64]) -> f64 {
        (self.f)(x)
    }
}

/// Sum of the `j` largest components — the generating family of the
/// majorization preorder.
pub fn top_j_sum(x: &[f64], j: usize) -> f64 {
    sorted_desc(x).iter().take(j).sum()
}

/// `Σ x_i^p` for `p ≥ 1`; Schur-convex on the non-negative orthant.
pub fn power_sum(x: &[f64], p: f64) -> f64 {
    debug_assert!(p >= 1.0, "power sums are Schur-convex only for p >= 1");
    x.iter().map(|v| v.abs().powf(p)).sum()
}

/// Negative Shannon entropy `Σ x_i ln x_i` (with `0 ln 0 = 0`);
/// Schur-convex on probability vectors.
pub fn neg_entropy(x: &[f64]) -> f64 {
    x.iter().map(|&v| if v > 0.0 { v * v.ln() } else { 0.0 }).sum()
}

/// Maximum component; Schur-convex.
pub fn max_component(x: &[f64]) -> f64 {
    x.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
}

/// Number of zero components (for non-negative integer-like vectors this is
/// `d − (remaining colors)`); Schur-convex on the non-negative orthant with
/// fixed total, since spreading mass can only reduce the zero count.
pub fn zero_count(x: &[f64]) -> f64 {
    x.iter().filter(|&&v| v == 0.0).count() as f64
}

/// The standard library of Schur-convex test functions for vectors of
/// dimension `d`: all top-`j` sums, square/cube power sums, negative
/// entropy, and the maximum.
pub fn standard_family(d: usize) -> Vec<SchurFn> {
    let mut fam = Vec::with_capacity(d + 4);
    for j in 1..=d {
        fam.push(SchurFn::new(format!("top_{j}_sum"), move |x| top_j_sum(x, j)));
    }
    fam.push(SchurFn::new("power_sum_2", |x| power_sum(x, 2.0)));
    fam.push(SchurFn::new("power_sum_3", |x| power_sum(x, 3.0)));
    fam.push(SchurFn::new("neg_entropy", neg_entropy));
    fam.push(SchurFn::new("max", max_component));
    fam
}

/// Randomized check of the Schur–Ostrowski criterion:
/// `f` symmetric and `(x_i − x_j)(∂f/∂x_i − ∂f/∂x_j) ≥ 0` everywhere.
///
/// Samples `trials` random non-negative points with total mass `mass` in
/// dimension `d`, applies random Robin-Hood transfers (which produce
/// majorized points), and checks `f` does not increase. Returns `false` on
/// the first violation beyond `tol`.
///
/// This is a *falsifier*, not a prover — it can only ever reject.
pub fn is_schur_convex_on_samples<R: Rng>(
    f: &dyn Fn(&[f64]) -> f64,
    d: usize,
    mass: f64,
    trials: usize,
    tol: f64,
    rng: &mut R,
) -> bool {
    assert!(d >= 2, "need dimension >= 2");
    for _ in 0..trials {
        // Random composition of `mass` into d non-negative parts.
        let mut x: Vec<f64> = (0..d).map(|_| rng.gen::<f64>()).collect();
        let s: f64 = x.iter().sum();
        for v in &mut x {
            *v *= mass / s;
        }
        // Random Robin-Hood transfer from a larger to a smaller coordinate.
        let i = rng.gen_range(0..d);
        let j = rng.gen_range(0..d);
        if i == j {
            continue;
        }
        let (hi, lo) = if x[i] >= x[j] { (i, j) } else { (j, i) };
        let delta = rng.gen::<f64>() * (x[hi] - x[lo]) / 2.0;
        let mut y = x.clone();
        y[hi] -= delta;
        y[lo] += delta;
        // x ⪰ y by construction, so Schur-convexity demands f(x) ≥ f(y).
        if f(&x) + tol < f(&y) {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn top_j_sums_are_monotone_in_j() {
        let x = [1.0, 5.0, 3.0];
        assert_eq!(top_j_sum(&x, 1), 5.0);
        assert_eq!(top_j_sum(&x, 2), 8.0);
        assert_eq!(top_j_sum(&x, 3), 9.0);
    }

    #[test]
    fn standard_family_members_pass_randomized_check() {
        let mut rng = StdRng::seed_from_u64(7);
        for f in standard_family(5) {
            let name = f.name().to_string();
            let ok = is_schur_convex_on_samples(
                &move |x: &[f64]| f.eval(x),
                5,
                1.0,
                2_000,
                1e-12,
                &mut rng,
            );
            assert!(ok, "{name} failed the Schur-Ostrowski sampling check");
        }
    }

    #[test]
    fn non_schur_convex_function_is_rejected() {
        // Negative of a strictly Schur-convex function is Schur-concave.
        let mut rng = StdRng::seed_from_u64(11);
        let ok = is_schur_convex_on_samples(
            &|x: &[f64]| -power_sum(x, 2.0),
            4,
            1.0,
            2_000,
            1e-12,
            &mut rng,
        );
        assert!(!ok, "Schur-concave function should be rejected");
    }

    #[test]
    fn neg_entropy_handles_zeros() {
        assert_eq!(neg_entropy(&[0.0, 0.0, 1.0]), 0.0);
        assert!(neg_entropy(&[0.5, 0.5]) < 0.0);
    }

    #[test]
    fn zero_count_is_schur_convex_in_spirit() {
        // Consensus has d-1 zeros, uniform has none.
        assert_eq!(zero_count(&[6.0, 0.0, 0.0]), 2.0);
        assert_eq!(zero_count(&[2.0, 2.0, 2.0]), 0.0);
    }

    #[test]
    fn schur_fn_debug_and_name() {
        let f = SchurFn::new("max", max_component);
        assert_eq!(f.name(), "max");
        assert!(format!("{f:?}").contains("max"));
        assert_eq!(f.eval(&[1.0, 9.0, 2.0]), 9.0);
    }
}
