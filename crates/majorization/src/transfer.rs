//! Constructive Hardy–Littlewood–Pólya: Robin-Hood transfers.
//!
//! A *T-transform* (Robin-Hood transfer) moves mass `δ` from a larger
//! component to a smaller one without crossing them. The classical theorem
//! states `x ⪯ y` if and only if `x` can be obtained from `y` by a finite
//! chain of T-transforms. [`transfer_chain`] constructs such a chain
//! explicitly, which gives an independent *certificate* for majorization
//! that the test-suite checks against the prefix-sum definition.

use crate::vector::{majorizes_eps, sorted_desc};

/// A single Robin-Hood transfer: move `amount` from the component currently
/// holding `from_value` to the one holding `to_value` (values refer to the
/// sorted-descending working vector at the time of application).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TTransform {
    /// Index (in the sorted working vector) mass is taken from.
    pub donor: usize,
    /// Index (in the sorted working vector) mass is given to.
    pub recipient: usize,
    /// Amount of mass moved; non-negative and at most half the gap.
    pub amount: f64,
}

/// Error returned when no transfer chain exists.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NotMajorizedError;

impl std::fmt::Display for NotMajorizedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "target is not majorized by the source vector")
    }
}

impl std::error::Error for NotMajorizedError {}

/// Constructs a chain of T-transforms carrying `y` (sorted desc) to `x`
/// (sorted desc), assuming `y ⪰ x`.
///
/// Returns the list of transfers and the final vector reached (which matches
/// `x↓` up to `eps`). The algorithm is the classical one: repeatedly find
/// the first index `i` where the working vector exceeds `x↓` and the next
/// index `j > i` where it falls short, then transfer
/// `min(w_i − x_i, x_j − w_j)`. Each step fixes at least one coordinate, so
/// at most `d − 1` transfers are produced.
///
/// # Errors
/// Returns [`NotMajorizedError`] if `y` does not majorize `x` (including
/// unequal totals) at tolerance `eps`.
pub fn transfer_chain(
    y: &[f64],
    x: &[f64],
    eps: f64,
) -> Result<(Vec<TTransform>, Vec<f64>), NotMajorizedError> {
    if !majorizes_eps(y, x, eps) {
        return Err(NotMajorizedError);
    }
    let d = y.len().max(x.len());
    let mut w = sorted_desc(y);
    w.resize(d, 0.0);
    let mut target = sorted_desc(x);
    target.resize(d, 0.0);

    let mut chain = Vec::new();
    // Each iteration zeroes at least one surplus/deficit coordinate.
    for _ in 0..2 * d {
        // First surplus.
        let Some(i) = (0..d).find(|&i| w[i] > target[i] + eps) else {
            break;
        };
        // Deepest deficit after it. One must exist (up to rounding) because
        // totals are equal and prefix sums of w dominate those of target;
        // taking the argmin instead of the first-below-eps index keeps the
        // loop robust when deficits are spread thinner than eps.
        let Some(j) = (i + 1..d)
            .min_by(|&a, &b| (w[a] - target[a]).partial_cmp(&(w[b] - target[b])).expect("no NaN"))
        else {
            break;
        };
        let amount = (w[i] - target[i]).min(target[j] - w[j]);
        if amount <= 0.0 {
            break; // residual violations are below tolerance
        }
        w[i] -= amount;
        w[j] += amount;
        chain.push(TTransform { donor: i, recipient: j, amount });
        // `amount` is an exact min, so each step pins w[i] to target[i] or
        // w[j] to target[j] exactly; at most 2d steps are ever needed.
    }
    Ok((chain, w))
}

/// Applies a doubly-stochastic averaging step
/// `x' = λ·x + (1−λ)·(x with coordinates i,j swapped)` for `λ ∈ [0, 1]`.
///
/// Averaging with a permutation matrix is exactly a T-transform, so the
/// result is always majorized by the input.
///
/// # Panics
/// Panics if `lambda ∉ [0,1]` or an index is out of bounds.
pub fn t_transform_apply(x: &[f64], i: usize, j: usize, lambda: f64) -> Vec<f64> {
    assert!((0.0..=1.0).contains(&lambda), "lambda must lie in [0,1]");
    let mut out = x.to_vec();
    let xi = x[i];
    let xj = x[j];
    out[i] = lambda * xi + (1.0 - lambda) * xj;
    out[j] = lambda * xj + (1.0 - lambda) * xi;
    out
}

/// Applies a full doubly-stochastic matrix `D` (row-major, rows sum to 1,
/// columns sum to 1) to `x`, yielding `Dx ⪯ x`.
///
/// # Panics
/// Panics if `d` is not square of the right dimension or rows/columns do not
/// sum to 1 within `1e-9`.
pub fn doubly_stochastic_apply(d: &[Vec<f64>], x: &[f64]) -> Vec<f64> {
    let n = x.len();
    assert_eq!(d.len(), n, "matrix must be n x n");
    for row in d {
        assert_eq!(row.len(), n, "matrix must be n x n");
        let s: f64 = row.iter().sum();
        assert!((s - 1.0).abs() < 1e-9, "rows must sum to 1");
    }
    for j in 0..n {
        let s: f64 = d.iter().map(|row| row[j]).sum();
        assert!((s - 1.0).abs() < 1e-9, "columns must sum to 1");
    }
    (0..n).map(|i| (0..n).map(|j| d[i][j] * x[j]).sum()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vector::majorizes;

    fn assert_close(a: &[f64], b: &[f64]) {
        assert_eq!(a.len(), b.len());
        for (u, v) in a.iter().zip(b) {
            assert!((u - v).abs() < 1e-9, "{a:?} != {b:?}");
        }
    }

    #[test]
    fn chain_reaches_target() {
        let y = [6.0, 0.0, 0.0];
        let x = [2.0, 2.0, 2.0];
        let (chain, reached) = transfer_chain(&y, &x, 1e-12).expect("majorized");
        assert!(!chain.is_empty());
        assert_close(&reached, &x);
    }

    #[test]
    fn chain_for_equivalent_vectors_is_empty() {
        let y = [3.0, 2.0, 1.0];
        let x = [1.0, 2.0, 3.0];
        let (chain, reached) = transfer_chain(&y, &x, 1e-12).expect("equivalent");
        assert!(chain.is_empty());
        assert_close(&reached, &[3.0, 2.0, 1.0]);
    }

    #[test]
    fn chain_fails_when_not_majorized() {
        assert_eq!(
            transfer_chain(&[2.0, 2.0, 2.0], &[6.0, 0.0, 0.0], 1e-12),
            Err(NotMajorizedError)
        );
    }

    #[test]
    fn chain_length_is_bounded() {
        let y = [10.0, 0.0, 0.0, 0.0, 0.0];
        let x = [2.0, 2.0, 2.0, 2.0, 2.0];
        let (chain, _) = transfer_chain(&y, &x, 1e-12).expect("majorized");
        assert!(chain.len() <= 4, "at most d-1 transfers, got {}", chain.len());
    }

    #[test]
    fn each_prefix_of_chain_is_sandwiched() {
        // Replay the chain and check y ⪰ intermediate ⪰ x throughout.
        let y = [8.0, 4.0, 2.0, 1.0, 1.0];
        let x = [4.0, 4.0, 3.0, 3.0, 2.0];
        let (chain, _) = transfer_chain(&y, &x, 1e-12).expect("majorized");
        let mut w = sorted_desc(&y);
        for t in &chain {
            w[t.donor] -= t.amount;
            w[t.recipient] += t.amount;
            assert!(majorizes(&y, &w), "y should majorize intermediate {w:?}");
            assert!(majorizes(&w, &x), "intermediate {w:?} should majorize x");
        }
    }

    #[test]
    fn t_transform_is_majorized_by_input() {
        let x = [5.0, 3.0, 1.0];
        for lambda in [0.0, 0.25, 0.5, 0.75, 1.0] {
            let y = t_transform_apply(&x, 0, 2, lambda);
            assert!(majorizes(&x, &y), "lambda={lambda}");
        }
    }

    #[test]
    fn doubly_stochastic_contracts() {
        let x = [4.0, 2.0, 0.0];
        // Uniform averaging matrix: everything becomes the mean.
        let d = vec![vec![1.0 / 3.0; 3]; 3];
        let y = doubly_stochastic_apply(&d, &x);
        assert_close(&y, &[2.0, 2.0, 2.0]);
        assert!(majorizes(&x, &y));
    }

    #[test]
    fn identity_matrix_is_noop() {
        let x = [4.0, 2.0, 0.5];
        let mut d = vec![vec![0.0; 3]; 3];
        for (i, row) in d.iter_mut().enumerate() {
            row[i] = 1.0;
        }
        assert_close(&doubly_stochastic_apply(&d, &x), &x);
    }

    #[test]
    #[should_panic(expected = "lambda")]
    fn bad_lambda_panics() {
        t_transform_apply(&[1.0, 2.0], 0, 1, 1.5);
    }
}
