#![warn(missing_docs)]
//! # symbreak — *Ignore or Comply? On Breaking Symmetry in Consensus*
//!
//! A from-scratch Rust reproduction of Berenbrink, Clementi, Elsässer,
//! Kling, Mallmann-Trenn and Natale, *"Ignore or Comply? On Breaking
//! Symmetry in Consensus"* (PODC 2017, arXiv:1702.04921).
//!
//! The paper compares two pull-based consensus rules on the complete graph
//! of `n` anonymous nodes, each initially holding one of up to `n` colors:
//!
//! * **2-Choices** ("ignore"): sample two nodes; adopt their color if they
//!   agree, otherwise keep your own.
//! * **3-Majority** ("comply"): sample three nodes; adopt the majority
//!   sample color, or a random sample's color if all differ.
//!
//! Both have *identical* expected behaviour, yet the paper proves a
//! polynomial separation from many-color configurations: 3-Majority
//! reaches consensus w.h.p. in `O(n^{3/4} log^{7/8} n)` rounds
//! (unconditionally — Theorem 4), while 2-Choices needs `Ω(n / log n)`
//! rounds from low-support starts (Theorem 5).
//!
//! This umbrella crate re-exports the whole workspace:
//!
//! | Crate | Contents |
//! |-------|----------|
//! | [`core`] | configurations, the AC-process framework, all update rules, engines, runners, dominance, theory bounds, Appendix-B counterexample |
//! | [`sim`] | deterministic RNG, exact binomial/multinomial/alias samplers, traces, a parallel Monte-Carlo driver |
//! | [`majorization`] | vector majorization, T-transforms, Schur-convexity, stochastic majorization |
//! | [`graphs`] | CSR graphs, coalescing random walks, the exact Lemma 4 duality coupling |
//! | [`adversary`] | round-wise Byzantine corruption, validity, adversarial runners |
//! | [`stats`] | summaries, power-law fits, ECDFs, stochastic-dominance tests |
//!
//! # Quickstart
//!
//! ```
//! use symbreak::prelude::*;
//!
//! // Leader election: 4096 nodes, each with its own color.
//! let start = Configuration::singletons(4096);
//! let mut engine = VectorEngine::new(ThreeMajority, start, 42);
//! let outcome = run_to_consensus(&mut engine, &RunOptions::default());
//! assert!(outcome.reached_consensus());
//! println!("consensus after {:?} rounds", outcome.consensus_round);
//! ```
//!
//! See `examples/` for runnable scenarios (quickstart, the
//! separation experiment, Byzantine agreement, the duality coupling) and
//! `crates/bench/src/bin/` for the experiment harness regenerating every
//! quantitative claim of the paper (EXPERIMENTS.md records the results).

pub mod cli;

pub use symbreak_adversary as adversary;
pub use symbreak_core as core;
pub use symbreak_graphs as graphs;
pub use symbreak_majorization as majorization;
pub use symbreak_runtime as runtime;
pub use symbreak_sim as sim;
pub use symbreak_stats as stats;

/// Convenience re-exports for the common workflow.
pub mod prelude {
    pub use symbreak_adversary::{
        run_adversarial, AdversarialRun, Adversary, MinoritySupporter, Nop, RandomFlipper,
        SplitKeeper, ValidityTracker,
    };
    pub use symbreak_core::rules::{
        HMajority, ThreeMajority, ThreeMajorityAlt, TwoChoices, TwoMedian, UndecidedDynamics, Voter,
    };
    pub use symbreak_core::{
        hitting_time_colors, run_to_consensus, AcProcess, AgentEngine, Configuration, Engine,
        ExpectedUpdate, Opinion, RunOptions, RunOutcome, UpdateRule, VectorEngine, VectorStep,
    };
    pub use symbreak_graphs::{DualityCoupling, Graph};
    pub use symbreak_runtime::{Cluster, ClusterConfig, HorizonOutcome, ReportMode};
    pub use symbreak_sim::{run_trials, trial_seed, Pcg64};
    pub use symbreak_stats::{Ecdf, StochasticOrder, Summary, Table};
}
