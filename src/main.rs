//! `symbreak` CLI entry point. All logic lives in [`symbreak::cli`].

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match symbreak::cli::parse(&args) {
        Ok(cmd) => symbreak::cli::execute(cmd),
        Err(msg) => {
            eprintln!("error: {msg}");
            std::process::exit(2);
        }
    }
}
