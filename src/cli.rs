//! Command-line interface (argument model + execution).
//!
//! Hand-rolled parsing (no external CLI dependency): see `symbreak --help`
//! for the grammar. The parsing layer is pure and unit-tested; `main`
//! merely forwards `std::env::args`.

use crate::prelude::*;

/// Which update rule to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RuleChoice {
    /// Voter (Polling).
    Voter,
    /// 2-Choices ("ignore").
    TwoChoices,
    /// 3-Majority ("comply").
    ThreeMajority,
}

impl RuleChoice {
    fn parse(s: &str) -> Result<Self, String> {
        match s {
            "voter" => Ok(Self::Voter),
            "2c" | "two-choices" => Ok(Self::TwoChoices),
            "3m" | "three-majority" => Ok(Self::ThreeMajority),
            other => Err(format!("unknown rule '{other}' (expected voter | 2c | 3m)")),
        }
    }

    fn display(&self) -> &'static str {
        match self {
            Self::Voter => "Voter",
            Self::TwoChoices => "2-Choices",
            Self::ThreeMajority => "3-Majority",
        }
    }
}

/// A parsed CLI invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Run one rule to consensus and report statistics over trials.
    Run {
        /// The update rule.
        rule: RuleChoice,
        /// Population size.
        n: u64,
        /// Initial colors (n-color start when `k == n`).
        k: u64,
        /// Extra support planted on color 0.
        bias: u64,
        /// Number of independent trials.
        trials: u64,
        /// Master seed.
        seed: u64,
    },
    /// Head-to-head 2-Choices vs 3-Majority from the n-color start.
    Race {
        /// Population size.
        n: u64,
        /// Number of independent trials.
        trials: u64,
        /// Master seed.
        seed: u64,
    },
    /// Demonstrate the exact Voter/coalescence duality on K_n.
    Duality {
        /// Number of nodes.
        n: usize,
        /// Seed.
        seed: u64,
    },
    /// Print the Appendix-B counterexample in exact rationals.
    AppendixB,
    /// Print usage.
    Help,
}

const USAGE: &str = "symbreak — 'Ignore or Comply? On Breaking Symmetry in Consensus' (PODC 2017)

USAGE:
    symbreak run --rule <voter|2c|3m> [--n N] [--k K] [--bias B] [--trials T] [--seed S]
    symbreak race [--n N] [--trials T] [--seed S]
    symbreak duality [--n N] [--seed S]
    symbreak appendix-b
    symbreak help

DEFAULTS:
    run:     n=4096  k=n  bias=0  trials=10  seed=42
    race:    n=4096  trials=10  seed=42
    duality: n=64    seed=42";

/// Parses a full argument list (excluding the program name).
pub fn parse(args: &[String]) -> Result<Command, String> {
    let mut it = args.iter();
    let sub = it.next().map(String::as_str).unwrap_or("help");
    let mut flags = std::collections::HashMap::new();
    let rest: Vec<&String> = it.collect();
    let mut i = 0;
    while i < rest.len() {
        let key = rest[i]
            .strip_prefix("--")
            .ok_or_else(|| format!("expected --flag, got '{}'", rest[i]))?;
        let value = rest.get(i + 1).ok_or_else(|| format!("flag --{key} needs a value"))?;
        flags.insert(key.to_string(), (*value).clone());
        i += 2;
    }
    let get_u64 = |flags: &std::collections::HashMap<String, String>,
                   key: &str,
                   default: u64|
     -> Result<u64, String> {
        match flags.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("--{key}: '{v}' is not a number")),
        }
    };
    match sub {
        "run" => {
            let rule =
                RuleChoice::parse(flags.get("rule").ok_or("run requires --rule <voter|2c|3m>")?)?;
            let n = get_u64(&flags, "n", 4096)?;
            let k = get_u64(&flags, "k", n)?;
            let bias = get_u64(&flags, "bias", 0)?;
            let trials = get_u64(&flags, "trials", 10)?;
            let seed = get_u64(&flags, "seed", 42)?;
            if k == 0 || k > n {
                return Err(format!("--k must lie in 1..=n, got {k}"));
            }
            if bias > n {
                return Err(format!("--bias must not exceed n, got {bias}"));
            }
            Ok(Command::Run { rule, n, k, bias, trials, seed })
        }
        "race" => Ok(Command::Race {
            n: get_u64(&flags, "n", 4096)?,
            trials: get_u64(&flags, "trials", 10)?,
            seed: get_u64(&flags, "seed", 42)?,
        }),
        "duality" => Ok(Command::Duality {
            n: get_u64(&flags, "n", 64)? as usize,
            seed: get_u64(&flags, "seed", 42)?,
        }),
        "appendix-b" => Ok(Command::AppendixB),
        "help" | "--help" | "-h" => Ok(Command::Help),
        other => Err(format!("unknown command '{other}'\n\n{USAGE}")),
    }
}

/// Executes a parsed command, writing human-readable output to stdout.
pub fn execute(cmd: Command) {
    match cmd {
        Command::Help => println!("{USAGE}"),
        Command::AppendixB => {
            let report = crate::core::counterexample::appendix_b_report();
            println!("x        = {}", join(&report.x));
            println!("x~       = {}", join(&report.x_tilde));
            println!("α3M(x)   = {}", join(&report.alpha_3m));
            println!("α4M(x~)  = {}", join(&report.alpha_4m));
            println!("x~ majorizes x:              {}", report.premise_holds);
            println!(
                "α4M(x~) majorizes α3M(x):    {}  (the counterexample)",
                report.conclusion_holds
            );
        }
        Command::Duality { n, seed } => {
            use rand::SeedableRng;
            let g = Graph::complete(n);
            let mut rng = Pcg64::seed_from_u64(seed);
            let (coupling, t_c) =
                DualityCoupling::generate_until_coalesced(&g, 1, 10_000_000, &mut rng)
                    .expect("complete graphs coalesce");
            println!("K_{n}: coalescence time T^1_C = {t_c}");
            println!(
                "Voter over reversed arrows reaches 1 opinion at round {:?}",
                symbreak_graphs::voter_time_from_coupling(&coupling, 1)
            );
            println!("per-τ identity holds: {}", coupling.verify_identity());
        }
        Command::Race { n, trials, seed } => {
            let start = Configuration::singletons(n);
            let mut means = Vec::new();
            for (name, rule) in
                [("3-Majority", RuleChoice::ThreeMajority), ("2-Choices", RuleChoice::TwoChoices)]
            {
                let times = consensus_times(rule, &start, trials, seed);
                let s = Summary::of_counts(&times);
                println!("{name:<12} mean {:.1} rounds (sd {:.1})", s.mean(), s.std_dev());
                means.push(s.mean());
            }
            println!("ratio 2C/3M: {:.2}", means[1] / means[0]);
        }
        Command::Run { rule, n, k, bias, trials, seed } => {
            let start = if bias > 0 {
                Configuration::biased(n, k as usize, bias)
            } else if k == n {
                Configuration::singletons(n)
            } else {
                Configuration::uniform(n, k as usize)
            };
            println!(
                "{} on n={n}, k={k}, bias={bias}: {trials} trials, seed {seed}",
                rule.display()
            );
            let times = consensus_times(rule, &start, trials, seed);
            let s = Summary::of_counts(&times);
            println!(
                "consensus rounds: mean {:.1}  sd {:.1}  min {}  median {:.0}  max {}",
                s.mean(),
                s.std_dev(),
                s.min(),
                s.median(),
                s.max()
            );
        }
    }
}

fn join(v: &[crate::core::counterexample::Rational]) -> String {
    v.iter().map(|r| r.to_string()).collect::<Vec<_>>().join(", ")
}

fn consensus_times(rule: RuleChoice, start: &Configuration, trials: u64, seed: u64) -> Vec<u64> {
    let start = start.clone();
    run_trials(trials, seed, move |_t, s| {
        let run = |engine: &mut dyn Engine| {
            run_to_consensus(engine, &RunOptions { max_rounds: u64::MAX, record_trace: false })
                .consensus_round
                .expect("uncapped run reaches consensus")
        };
        match rule {
            RuleChoice::Voter => {
                run(&mut VectorEngine::new(Voter, start.clone(), s).with_compaction())
            }
            RuleChoice::TwoChoices => {
                run(&mut VectorEngine::new(TwoChoices, start.clone(), s).with_compaction())
            }
            RuleChoice::ThreeMajority => {
                run(&mut VectorEngine::new(ThreeMajority, start.clone(), s).with_compaction())
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parse_run_with_defaults() {
        let cmd = parse(&args("run --rule 3m")).expect("parses");
        assert_eq!(
            cmd,
            Command::Run {
                rule: RuleChoice::ThreeMajority,
                n: 4096,
                k: 4096,
                bias: 0,
                trials: 10,
                seed: 42
            }
        );
    }

    #[test]
    fn parse_run_with_flags() {
        let cmd = parse(&args("run --rule 2c --n 100 --k 10 --bias 5 --trials 3 --seed 7"))
            .expect("parses");
        assert_eq!(
            cmd,
            Command::Run {
                rule: RuleChoice::TwoChoices,
                n: 100,
                k: 10,
                bias: 5,
                trials: 3,
                seed: 7
            }
        );
    }

    #[test]
    fn parse_rejects_bad_rule_and_ranges() {
        assert!(parse(&args("run --rule nope")).is_err());
        assert!(parse(&args("run --rule 3m --k 0")).is_err());
        assert!(parse(&args("run --rule 3m --n 10 --k 20")).is_err());
        assert!(parse(&args("run --rule 3m --n 10 --bias 20")).is_err());
        assert!(parse(&args("run")).is_err());
    }

    #[test]
    fn parse_other_commands() {
        assert_eq!(
            parse(&args("race")).expect("ok"),
            Command::Race { n: 4096, trials: 10, seed: 42 }
        );
        assert_eq!(
            parse(&args("duality --n 32")).expect("ok"),
            Command::Duality { n: 32, seed: 42 }
        );
        assert_eq!(parse(&args("appendix-b")).expect("ok"), Command::AppendixB);
        assert_eq!(parse(&args("help")).expect("ok"), Command::Help);
        assert_eq!(parse(&[]).expect("ok"), Command::Help);
    }

    #[test]
    fn parse_rejects_malformed_flags() {
        assert!(parse(&args("race --n")).is_err());
        assert!(parse(&args("race n 5")).is_err());
        assert!(parse(&args("race --n five")).is_err());
        assert!(parse(&args("frobnicate")).is_err());
    }

    #[test]
    fn execute_small_commands_do_not_panic() {
        execute(Command::Help);
        execute(Command::AppendixB);
        execute(Command::Duality { n: 16, seed: 1 });
        execute(Command::Run {
            rule: RuleChoice::ThreeMajority,
            n: 64,
            k: 64,
            bias: 0,
            trials: 3,
            seed: 1,
        });
        execute(Command::Race { n: 64, trials: 3, seed: 1 });
    }
}
