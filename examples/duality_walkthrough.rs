//! Figure 1, step by step: the Voter process and coalescing random walks
//! are the same randomness read in opposite directions (Lemma 4).
//!
//! We materialize the arrow field Y_t(u), run coalescing walks forward,
//! run Voter over the reversed arrows, and print both trajectories —
//! they match column for column, exactly.
//!
//! ```sh
//! cargo run --release --example duality_walkthrough
//! ```

use symbreak::prelude::*;

fn main() {
    let g = Graph::complete(48);
    let mut rng = {
        use rand::SeedableRng;
        Pcg64::seed_from_u64(1234)
    };

    let (coupling, t_c) = DualityCoupling::generate_until_coalesced(&g, 1, 100_000, &mut rng)
        .expect("complete graphs coalesce");
    println!("complete graph K_48, one seeded arrow field, T^1_C = {t_c}\n");

    println!("{:>4} | {:>16} | {:>18} | match", "tau", "coalescing walks", "voter opinions");
    println!("{:->4}-+-{:->16}-+-{:->18}-+------", "", "", "");
    let mut all = true;
    for tau in 0..=t_c as usize {
        let walks = coupling.walks_after(tau);
        let opinions = coupling.voter_opinions_after(tau);
        let ok = walks == opinions;
        all &= ok;
        println!("{tau:>4} | {walks:>16} | {opinions:>18} | {}", if ok { "=" } else { "MISMATCH" });
    }
    println!(
        "\nEvery row matches: {all}. The Voter run of length τ over the reversed arrows has \
         exactly as many opinions as there are surviving walks after τ steps — so T^k_V = T^k_C \
         per realization, which is Lemma 4."
    );
}
