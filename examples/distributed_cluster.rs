//! Run 3-Majority as an actual message-passing system: sharded node
//! actors exchanging Uniform Pull request/reply batches over channels,
//! with a coordinator driving the synchronous rounds.
//!
//! ```sh
//! cargo run --release --example distributed_cluster
//! ```

use symbreak::prelude::*;

fn main() {
    let n = 2_000;
    let k = 20;
    let start = Configuration::uniform(n, k);
    println!("cluster: {n} nodes over 8 shard threads, k = {k} colors, 3-Majority\n");

    let cluster = Cluster::new(ThreeMajority, &start, ClusterConfig::new(8, 7));
    let outcome = cluster.run_to_consensus(100_000).expect("consensus");

    println!("round | colors | max support | bias");
    for r in outcome.trace.rounds() {
        println!("{:5} | {:6} | {:11} | {}", r.round, r.num_colors, r.max_support, r.bias);
        if r.num_colors == 1 {
            break;
        }
    }
    println!(
        "\nconsensus at round {} on color {}",
        outcome.consensus_round,
        outcome.final_config.plurality()
    );
    println!(
        "wire entries: {} total, {:.0}/round (batched wire; the per-entry model is {}/round)",
        outcome.total_messages,
        outcome.total_messages as f64 / outcome.consensus_round as f64,
        n * 3 * 2
    );
}
