//! The paper's headline, live: "ignore" (2-Choices) vs "comply"
//! (3-Majority) from the n-color configuration.
//!
//! Both rules have identical expected behaviour, yet complying with a
//! third sample breaks symmetry polynomially faster when there are many
//! colors and no bias.
//!
//! ```sh
//! cargo run --release --example ignore_vs_comply
//! ```

use symbreak::prelude::*;

fn race(n: u64, trials: u64) -> (f64, f64) {
    let start = Configuration::singletons(n);
    let s3 = {
        let start = start.clone();
        run_trials(trials, 7, move |_t, seed| {
            let mut e = VectorEngine::new(ThreeMajority, start.clone(), seed).with_compaction();
            run_to_consensus(&mut e, &RunOptions { max_rounds: u64::MAX, record_trace: false })
                .consensus_round
                .expect("consensus")
        })
    };
    let s2 = run_trials(trials, 8, move |_t, seed| {
        let mut e = VectorEngine::new(TwoChoices, start.clone(), seed).with_compaction();
        run_to_consensus(&mut e, &RunOptions { max_rounds: u64::MAX, record_trace: false })
            .consensus_round
            .expect("consensus")
    });
    (Summary::of_counts(&s3).mean(), Summary::of_counts(&s2).mean())
}

fn main() {
    println!("mean consensus time from n distinct colors (10 trials each)\n");
    println!("{:>8} | {:>12} | {:>12} | {:>7}", "n", "3-Majority", "2-Choices", "ratio");
    println!("{:->8}-+-{:->12}-+-{:->12}-+-{:->7}", "", "", "", "");
    for exp in 8..=13 {
        let n = 1u64 << exp;
        let (comply, ignore) = race(n, 10);
        println!("{n:>8} | {comply:>12.1} | {ignore:>12.1} | {:>7.2}", ignore / comply);
    }
    println!("\nThe ratio grows with n: complying beats ignoring, polynomially (Theorem 1).");
}
