//! Quickstart: run 3-Majority to consensus and watch the observables.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use symbreak::prelude::*;

fn main() {
    // 10,000 nodes, each initially supporting its own color — the hardest
    // symmetric start (and simultaneously a leader election).
    let n = 10_000;
    let start = Configuration::singletons(n);
    println!("start: {start}");

    let mut engine = VectorEngine::new(ThreeMajority, start, /* seed */ 42);
    let outcome =
        run_to_consensus(&mut engine, &RunOptions { max_rounds: 1_000_000, record_trace: true });

    let trace = outcome.trace.as_ref().expect("trace requested");
    println!("\nround | colors remaining | max support | bias");
    // Print a geometric sample of the trajectory.
    let mut next_print = 1u64;
    for r in trace.rounds() {
        if r.round == 0 || r.round >= next_print || r.num_colors == 1 {
            println!("{:5} | {:16} | {:11} | {}", r.round, r.num_colors, r.max_support, r.bias);
            next_print = (r.round.max(1)) * 2;
        }
        if r.num_colors == 1 {
            break;
        }
    }

    let round = outcome.consensus_round.expect("reached consensus");
    let bound = symbreak::core::theory::theorem4_bound(n);
    println!("\nconsensus on color {:?} after {round} rounds", outcome.winner.expect("winner"));
    println!("Theorem 4 bound n^(3/4)·log^(7/8) n = {bound:.0} rounds — comfortably above");
}
