//! The whole process zoo on one start line: Voter, 2-Choices, 3-Majority
//! (both formulations), h-Majority, 2-Median, and the undecided-state
//! dynamics, all racing from the same uniform 16-color configuration via
//! the agent-level engine (which handles non-AC processes too).
//!
//! ```sh
//! cargo run --release --example process_zoo
//! ```

use symbreak::core::rules::{
    HMajority, ThreeMajority, ThreeMajorityAlt, TwoChoices, TwoMedian, UndecidedDynamics, Voter,
};
use symbreak::prelude::*;

fn race<R: UpdateRule + Clone>(rule: R, start: &Configuration, trials: u64) -> f64 {
    let total: u64 = (0..trials)
        .map(|t| {
            let mut engine = AgentEngine::new(rule.clone(), start, 9_000 + t);
            let mut rounds = 0u64;
            while !engine.is_consensus() && rounds < 1_000_000 {
                engine.step();
                rounds += 1;
            }
            rounds
        })
        .sum();
    total as f64 / trials as f64
}

fn main() {
    let n = 1_024;
    let k = 16;
    let start = Configuration::uniform(n, k);
    let trials = 10;
    println!("agent-level race: n = {n}, k = {k} uniform, {trials} trials each\n");
    println!("{:<32} | {:>12}", "process", "mean rounds");
    println!("{:-<32}-+-{:->12}", "", "");

    println!("{:<32} | {:>12.1}", "Voter", race(Voter, &start, trials));
    println!("{:<32} | {:>12.1}", "2-Choices (ignore)", race(TwoChoices, &start, trials));
    println!("{:<32} | {:>12.1}", "3-Majority (comply)", race(ThreeMajority, &start, trials));
    println!(
        "{:<32} | {:>12.1}",
        "3-Majority (2-Choices+Voter)",
        race(ThreeMajorityAlt, &start, trials)
    );
    for h in [4usize, 5] {
        println!(
            "{:<32} | {:>12.1}",
            format!("{h}-Majority"),
            race(HMajority::new(h), &start, trials)
        );
    }
    println!("{:<32} | {:>12.1}", "2-Median (ordered colors)", race(TwoMedian, &start, trials));
    println!(
        "{:<32} | {:>12.1}",
        "Undecided-State dynamics",
        race(UndecidedDynamics, &start, trials)
    );

    println!("\nNotes: the two 3-Majority formulations agree (same process);");
    println!("h-Majority accelerates with h; 2-Median is fast but needs ordered");
    println!("colors and is not Byzantine-safe; Voter carries no drift at all.");
}
