//! Byzantine agreement with 3-Majority (Section 5): a round-wise
//! adversary corrupts F nodes after every protocol round; the protocol
//! must still stabilize on a *valid* color (one that a non-corrupted node
//! supported initially).
//!
//! ```sh
//! cargo run --release --example byzantine_agreement
//! ```

use symbreak::prelude::*;

fn main() {
    let n = 4_096;
    let k = 4;
    let start = Configuration::uniform(n, k);
    println!("n = {n}, k = {k} uniform start; quorum = 90% of nodes on one valid color\n");

    println!(
        "{:<20} | {:>5} | {:>11} | {:>6} | {:>12}",
        "adversary", "F", "stabilized?", "valid?", "rounds"
    );
    println!("{:-<20}-+-{:->5}-+-{:->11}-+-{:->6}-+-{:->12}", "", "", "", "", "");

    let opts = AdversarialRun { max_rounds: 20_000, quorum_fraction: 0.9, seed: 2024 };
    let report = |name: &str, f: u64, out: symbreak::adversary::AdversarialOutcome| {
        println!(
            "{:<20} | {:>5} | {:>11} | {:>6} | {:>12}",
            name,
            f,
            if out.stabilized_round.is_some() { "yes" } else { "NO" },
            if out.valid { "yes" } else { "NO" },
            out.stabilized_round.map_or("-".into(), |r| r.to_string()),
        );
    };

    report("none", 0, run_adversarial(&ThreeMajority, &mut Nop, start.clone(), &opts));
    for f in [1, 8, 64] {
        report(
            "RandomFlipper",
            f,
            run_adversarial(&ThreeMajority, &mut RandomFlipper::new(f), start.clone(), &opts),
        );
        report(
            "MinoritySupporter",
            f,
            run_adversarial(
                &ThreeMajority,
                &mut MinoritySupporter::new(f, k),
                start.clone(),
                &opts,
            ),
        );
    }
    // The overwhelming adversary: pins the top two colors together.
    report(
        "SplitKeeper",
        n,
        run_adversarial(&ThreeMajority, &mut SplitKeeper::new(n), start, &opts),
    );

    println!("\nSmall budgets are absorbed by the drift; a Θ(n) split-keeper freezes the race.");
}
