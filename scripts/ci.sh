#!/usr/bin/env bash
# CI pipeline: tier-1 verify, experiment smoke, bench baseline dump.
#
# Usage: scripts/ci.sh [output.json]
#   BENCH_OUT   — bench summary path (default: arg1 or BENCH_ci.json)
#   SYMBREAK_SCALE       — experiment scale for the smoke run (default 0.25)
#   SYMBREAK_BENCH_MS    — per-benchmark measurement budget (default 2500)
set -euo pipefail
cd "$(dirname "$0")/.."

BENCH_OUT="${BENCH_OUT:-${1:-BENCH_ci.json}}"

echo "==> lint: cargo fmt --check"
cargo fmt --all --check

echo "==> lint: cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> docs: cargo doc --no-deps (RUSTDOCFLAGS=-D warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --quiet

echo "==> docs: cargo test --doc"
cargo test -q --doc --workspace

echo "==> tier-1: cargo build --release && cargo test -q"
cargo build --release --workspace
cargo test -q --workspace

echo "==> runtime smoke: batched/delta cluster, singleton start k = n = 4096, ~50 rounds"
SYMBREAK_SCALE=0.004096 cargo run --release -p symbreak-bench --bin exp_e20_cluster_theorem5

echo "==> consumption smoke: multiset/single-peer native wire vs ordered dealing, k = n = 4096"
SYMBREAK_SCALE=0.04096 cargo run --release -p symbreak-bench --bin exp_e21_multiset_wire

echo "==> fault smoke: quorum-relaxed cluster under drop/crash/Byzantine injection"
SYMBREAK_SCALE=0.04096 cargo run --release -p symbreak-bench --bin exp_e22_cluster_faults

echo "==> condensed smoke: histogram shards, Theorem-5 horizon at n = 262144, paired repr runs"
SYMBREAK_SCALE=0.00262144 cargo run --release -p symbreak-bench --bin exp_e23_condensed_shards

echo "==> transport smoke: loopback Unix-socket fleet vs channel fleet, byte-exact per seed"
SYMBREAK_SCALE=0.04096 cargo run --release -p symbreak-bench --bin exp_e24_transport

echo "==> grouped pull smoke: forced-gear bands + paired k = n singleton rows"
SYMBREAK_SCALE=0.001 cargo run --release -p symbreak-bench --bin exp_e25_grouped_pull

echo "==> incremental round-state smoke: sampler flat band + paired stalled-regime cluster runs"
SYMBREAK_SCALE=0.04096 cargo run --release -p symbreak-bench --bin exp_e26_incremental_rounds

echo "==> experiment smoke (SYMBREAK_SCALE=${SYMBREAK_SCALE:-0.25})"
SYMBREAK_SCALE="${SYMBREAK_SCALE:-0.25}" \
    cargo run --release -p symbreak-bench --bin run_all

echo "==> benches: samplers + engines (incl. cluster_singleton_run) -> ${BENCH_OUT}"
JSONL="$(mktemp)"
trap 'rm -f "$JSONL"' EXIT
SYMBREAK_BENCH_JSON="$JSONL" cargo bench -p symbreak-bench -- samplers engines
{
    echo '['
    sed 's/$/,/' "$JSONL" | sed '$ s/,$//'
    echo ']'
} > "$BENCH_OUT"
echo "wrote $(grep -c ns_per_iter "$BENCH_OUT") results to ${BENCH_OUT}"
